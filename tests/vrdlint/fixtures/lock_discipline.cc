// lock-discipline fixture: guarded_by coverage inside methods and a
// tree-wide lock-ordering inversion. NOT compiled.
#include <mutex>

namespace fixture {

class Counter {
 public:
  void Locked() {
    const std::lock_guard<std::mutex> lock(mu_);
    ++count_;  // legal: mu_ held
  }

  void Unlocked() {
    ++count_;  // violation: mu_ not held
  }

  // vrdlint: requires_lock(mu_)
  void CallerHolds() {
    ++count_;  // legal: caller-holds contract
  }

  void Allowed() {
    ++count_;  // vrdlint: allow(lock-discipline) -- racy stats are fine
  }

  int ScopedTooNarrow() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++count_;  // legal: inside the guarded block
    }
    return count_;  // violation: the guard's block already closed
  }

 private:
  mutable std::mutex mu_;
  // vrdlint: guarded_by(mu_)
  int count_ = 0;
};

class Orderer {
 public:
  void AThenB() {
    const std::lock_guard<std::mutex> a(mu_a_);
    const std::lock_guard<std::mutex> b(mu_b_);
  }

  void BThenA() {
    const std::lock_guard<std::mutex> b(mu_b_);
    const std::lock_guard<std::mutex> a(mu_a_);  // order inversion
  }

 private:
  std::mutex mu_a_;
  std::mutex mu_b_;
};

}  // namespace fixture
