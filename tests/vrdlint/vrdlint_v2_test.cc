/**
 * vrdlint v2 self-tests: the symbol-aware rule families (rng-flow,
 * float-determinism, lock-discipline, scope-aware kernel-allocation)
 * pinned against fixtures, plus the SARIF writer's schema shape and
 * the baseline round-trip (write -> rescan clean -> inject violation
 * -> only the new finding survives).
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.h"
#include "sarif.h"
#include "vrdlint.h"

namespace {

using vrdlint::Baseline;
using vrdlint::Config;
using vrdlint::Diagnostic;

std::filesystem::path FixtureDir() { return VRDLINT_FIXTURE_DIR; }

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixtureDir() / name);
  EXPECT_TRUE(in) << "missing fixture: " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> Locations(const std::vector<Diagnostic>& found) {
  std::vector<std::string> out;
  out.reserve(found.size());
  for (const Diagnostic& d : found) {
    out.push_back(std::to_string(d.line) + ": " + d.rule);
  }
  return out;
}

/// "file:line: rule" — the tree-scan shape (several files at once).
std::vector<std::string> FileLocations(
    const std::vector<Diagnostic>& found) {
  std::vector<std::string> out;
  out.reserve(found.size());
  for (const Diagnostic& d : found) {
    out.push_back(d.file + ":" + std::to_string(d.line) + ": " + d.rule);
  }
  return out;
}

std::vector<Diagnostic> LintFixture(const std::string& name,
                                    const Config& config = Config()) {
  return vrdlint::LintSource(name, ReadFixture(name), config);
}

TEST(VrdlintRngFlow, FlagsCaptureBoundaryAndReseedAcrossFiles) {
  // The boundary-call case needs the tree scan: the callee signature
  // lives in the paired header, resolved via the symbol index.
  Config config;
  config.scan_dirs = {"rng_flow"};
  config.scan_dirs_overridden = true;
  const std::vector<Diagnostic> found =
      vrdlint::LintTree(FixtureDir().string(), config);
  EXPECT_EQ(FileLocations(found),
            (std::vector<std::string>{
                "rng_flow/rng_flow.cc:16: rng-flow",        // [&rng] capture
                "rng_flow/rng_flow.cc:17: rng-discipline",  // v1 co-fires
                "rng_flow/rng_flow.cc:27: rng-discipline",  // v1 co-fires
                "rng_flow/rng_flow.cc:27: rng-flow",        // FillShard(out, rng)
                "rng_flow/rng_flow.cc:33: rng-flow",        // Reseed(i * 1337)
            }));
  // The boundary diagnostic names the cross-file declaration site.
  bool saw_boundary = false;
  for (const Diagnostic& d : found) {
    if (d.line == 27 && d.rule == "rng-flow") {
      saw_boundary = true;
      EXPECT_NE(d.message.find("rng_flow/shard_math.h:16"),
                std::string::npos)
          << d.message;
    }
  }
  EXPECT_TRUE(saw_boundary);
}

TEST(VrdlintFloatDeterminism, FlagsContractableShapesAndSharedAccum) {
  Config config;
  config.float_paths = {"float_determinism.cc"};
  const std::vector<Diagnostic> found =
      LintFixture("float_determinism.cc", config);
  // Line 11: a*b + c. Line 15: acc += w*x. Line 35: shared `total`
  // accumulated across ParallelFor tasks. The split/paren-depth/
  // integer/local/allowed variants stay clean.
  EXPECT_EQ(Locations(found),
            (std::vector<std::string>{
                "11: float-determinism",
                "15: float-determinism",
                "35: float-determinism",
            }));
}

TEST(VrdlintFloatDeterminism, AccumulationHalfAppliesOutsideFloatPaths) {
  // No float-path configured: the FMA shapes are not checked, but the
  // cross-task accumulation still is.
  const std::vector<Diagnostic> found =
      LintFixture("float_determinism.cc");
  EXPECT_EQ(Locations(found),
            (std::vector<std::string>{"35: float-determinism"}));
}

TEST(VrdlintLockDiscipline, ChecksGuardedByCoverageAndOrdering) {
  const std::vector<Diagnostic> found =
      LintFixture("lock_discipline.cc");
  // Line 15: unlocked touch. Line 32: the guard's block already
  // closed. Line 50: mu_a_/mu_b_ acquired in both orders. The locked,
  // requires_lock, and allow(lock-discipline) methods stay clean.
  EXPECT_EQ(Locations(found),
            (std::vector<std::string>{
                "15: lock-discipline",
                "32: lock-discipline",
                "50: lock-discipline",
            }));
  EXPECT_NE(found[2].message.find("inconsistent order"),
            std::string::npos);
  EXPECT_NE(found[0].message.find("guarded_by(mu_)"), std::string::npos);
}

TEST(VrdlintKernelAllocation, ReserveInAnotherScopeExcusesGrowth) {
  Config config;
  config.kernel_paths = {"kernel_allocation_scoped.cc"};
  const std::vector<Diagnostic> found =
      LintFixture("kernel_allocation_scoped.cc", config);
  // Push() grows samples_ which the constructor (a different function
  // scope, later in the file) reserves: legal. Grow()'s same-scope
  // reserve comes after the growth: still flagged.
  EXPECT_EQ(Locations(found),
            (std::vector<std::string>{"20: kernel-allocation"}));
}

TEST(VrdlintSarif, ReportHasSchemaRulesAndFingerprints) {
  std::vector<Diagnostic> diags;
  diags.push_back(Diagnostic{"src/a.cc", 7, "rng-flow",
                             "message with \"quotes\" and\nnewline",
                             0x0123456789abcdefULL});
  diags.push_back(
      Diagnostic{"src/b.cc", 3, "banned-api", "plain", 0xffULL});
  const std::string sarif = vrdlint::SarifReport(diags);
  EXPECT_NE(
      sarif.find(
          "\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""),
      std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"vrdlint\""), std::string::npos);
  // Rule table is sorted and results reference it by index.
  EXPECT_NE(sarif.find("{\"id\": \"banned-api\"}"), std::string::npos);
  EXPECT_NE(sarif.find("{\"id\": \"rng-flow\"}"), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"rng-flow\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleIndex\": 1"), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
  EXPECT_NE(sarif.find("\"uriBaseId\": \"SRCROOT\""), std::string::npos);
  EXPECT_NE(sarif.find("\"vrdlintContentHash\": \"0123456789abcdef\""),
            std::string::npos);
  // JSON escaping: the quote and newline must not appear raw.
  EXPECT_NE(sarif.find("message with \\\"quotes\\\" and\\nnewline"),
            std::string::npos);
}

TEST(VrdlintBaseline, HashIsTrimInvariantAndContentSensitive) {
  EXPECT_EQ(vrdlint::HashLineContent("  a * b + c;  "),
            vrdlint::HashLineContent("a * b + c;"));
  EXPECT_NE(vrdlint::HashLineContent("a * b + c;"),
            vrdlint::HashLineContent("a * b - c;"));
}

TEST(VrdlintBaseline, RoundTripSuppressesRecordedFindingsOnly) {
  Config config;
  config.float_paths = {"float_determinism.cc"};
  const std::vector<Diagnostic> found =
      LintFixture("float_determinism.cc", config);
  ASSERT_EQ(found.size(), 3u);

  // Write -> parse -> rescan: everything suppressed, nothing stale.
  const std::string text = vrdlint::BaselineText(found);
  Baseline baseline;
  std::string error;
  ASSERT_TRUE(vrdlint::ParseBaselineText(text, &baseline, &error))
      << error;
  bool stale = true;
  EXPECT_TRUE(vrdlint::FilterBaseline(found, baseline, &stale).empty());
  EXPECT_FALSE(stale);

  // A fixed finding leaves its baseline entry unconsumed: stale.
  std::vector<Diagnostic> fewer(found.begin(), found.end() - 1);
  EXPECT_TRUE(vrdlint::FilterBaseline(fewer, baseline, &stale).empty());
  EXPECT_TRUE(stale);

  // A new finding (same rule/file, different line content) is the one
  // and only survivor.
  std::vector<Diagnostic> more = found;
  more.push_back(Diagnostic{found[0].file, 99, found[0].rule,
                            "injected violation",
                            vrdlint::HashLineContent("zz += q * r;")});
  const std::vector<Diagnostic> surviving =
      vrdlint::FilterBaseline(more, baseline, &stale);
  ASSERT_EQ(surviving.size(), 1u);
  EXPECT_EQ(surviving[0].line, 99u);
  EXPECT_FALSE(stale);
}

TEST(VrdlintBaseline, ParserRejectsBadHeaderAndMalformedRecords) {
  Baseline baseline;
  std::string error;
  EXPECT_FALSE(
      vrdlint::ParseBaselineText("not a header\n", &baseline, &error));
  EXPECT_NE(error.find("header"), std::string::npos);
  EXPECT_FALSE(vrdlint::ParseBaselineText(
      "# vrdlint baseline v1\nrule\tfile\tnothex\t1\n", &baseline,
      &error));
  EXPECT_TRUE(vrdlint::ParseBaselineText("", &baseline, &error));
  EXPECT_TRUE(baseline.empty());
}

}  // namespace
