#include "common/units.h"

#include <gtest/gtest.h>

namespace vrddram {
namespace {

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(units::FromNs(1.0), units::kNanosecond);
  EXPECT_EQ(units::FromUs(1.0), units::kMicrosecond);
  EXPECT_EQ(units::FromNs(32.0), 32000);
  EXPECT_DOUBLE_EQ(units::ToNs(units::kSecond), 1e9);
  EXPECT_DOUBLE_EQ(units::ToUs(units::kMillisecond), 1000.0);
  EXPECT_DOUBLE_EQ(units::ToSeconds(units::kSecond), 1.0);
}

TEST(UnitsTest, RoundTrip) {
  EXPECT_DOUBLE_EQ(units::ToNs(units::FromNs(13.75)), 13.75);
  EXPECT_DOUBLE_EQ(units::ToUs(units::FromUs(7.8)), 7.8);
}

TEST(UnitsTest, FromNsRounds) {
  // 1.816 ns (tRRD_S in Table 6) must survive the picosecond grid.
  EXPECT_EQ(units::FromNs(1.816), 1816);
}

}  // namespace
}  // namespace vrddram
