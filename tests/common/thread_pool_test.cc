#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace vrddram {
namespace {

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ResultsLandInIndexedSlots) {
  ThreadPool pool(3);
  std::vector<std::size_t> out(513, 0);
  pool.ParallelFor(out.size(), [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], i * i);
  }
}

TEST(ThreadPoolTest, OversubscriptionCompletes) {
  // Far more workers than cores (and than chunks): everything still
  // runs exactly once and the pool drains cleanly.
  ThreadPool pool(16);
  std::atomic<std::uint64_t> sum{0};
  constexpr std::size_t kN = 1000;
  pool.ParallelFor(kN, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> calls{0};
    pool.ParallelFor(17, [&](std::size_t) { calls.fetch_add(1); });
    ASSERT_EQ(calls.load(), 17);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](std::size_t i) {
                         if (i == 42) {
                           throw std::runtime_error("task 42 failed");
                         }
                       }),
      std::runtime_error);
  // The pool survives a failed job and runs the next one normally.
  std::atomic<int> calls{0};
  pool.ParallelFor(8, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 8);
}

TEST(ThreadPoolTest, SmallestIndexExceptionWinsDeterministically) {
  // All four tasks rendezvous on a spin barrier before any of them
  // throws (pool(4) with n = 4 gives one single-index chunk per
  // worker, so all four genuinely run concurrently). Whatever the
  // completion race, the rethrown exception must be task 0's — the
  // smallest index — not whichever thread reported first.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(4);
    std::atomic<int> arrived{0};
    try {
      pool.ParallelFor(4, [&](std::size_t i) {
        arrived.fetch_add(1);
        while (arrived.load() < 4) {
        }
        throw std::runtime_error("task " + std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "task 0") << "round " << round;
    }
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // A task that fans out on its own pool must not deadlock; the inner
  // loop runs inline on the worker.
  ThreadPool pool(2);
  std::atomic<int> inner_calls{0};
  pool.ParallelFor(4, [&](std::size_t) {
    pool.ParallelFor(5, [&](std::size_t) { inner_calls.fetch_add(1); });
  });
  EXPECT_EQ(inner_calls.load(), 20);
}

TEST(ThreadPoolTest, DefaultWorkerCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultWorkerCount(), 1u);
  ThreadPool pool;  // workers = 0 -> DefaultWorkerCount()
  EXPECT_EQ(pool.worker_count(), ThreadPool::DefaultWorkerCount());
}

TEST(ThreadPoolTest, FreeFunctionFallsBackInline) {
  // Null pool: runs on the calling thread, same results.
  std::vector<int> out(10, 0);
  ParallelFor(nullptr, out.size(),
              [&](std::size_t i) { out[i] = static_cast<int>(i) + 1; });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 1);
  EXPECT_EQ(out, expected);
}

}  // namespace
}  // namespace vrddram
