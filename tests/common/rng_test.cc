#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/error.h"

namespace vrddram {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(99);
  const std::uint64_t first = rng.Next();
  rng.Next();
  rng.Reseed(99);
  EXPECT_EQ(rng.Next(), first);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBelowStaysInBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBelow(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(6);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(16);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextGaussian(10.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, LognormalMedian) {
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) {
    xs.push_back(rng.NextLognormal(std::log(100.0), 0.5));
  }
  std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
  EXPECT_NEAR(xs[25000], 100.0, 3.0);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(18);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextExponential(2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(20);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.Fork("child-a");
  Rng parent2(42);
  Rng child2 = parent2.Fork("child-a");
  // Deterministic: same parent state + label -> same child.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(child.Next(), child2.Next());
  }
  // Different labels -> different children.
  Rng parent3(42);
  Rng child3 = parent3.Fork("child-b");
  Rng parent4(42);
  Rng child4 = parent4.Fork("child-a");
  EXPECT_NE(child3.Next(), child4.Next());
}

TEST(RngTest, HashLabelDistinguishesLabels) {
  EXPECT_NE(HashLabel(1, "row=5"), HashLabel(1, "row=6"));
  EXPECT_NE(HashLabel(1, "row=5"), HashLabel(2, "row=5"));
  EXPECT_EQ(HashLabel(1, "row=5"), HashLabel(1, "row=5"));
}

TEST(RngTest, MixSeedOrderSensitive) {
  EXPECT_NE(MixSeed(1, 2), MixSeed(2, 1));
  EXPECT_NE(MixSeed(1, 2, 3), MixSeed(1, 3, 2));
  EXPECT_EQ(MixSeed(1, 2, 3, 4), MixSeed(1, 2, 3, 4));
}

TEST(RngTest, NextBelowZeroBoundThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.NextBelow(0), PanicError);
}

}  // namespace
}  // namespace vrddram

namespace vrddram {
namespace {

// Distribution-level property: NextBelow is uniform by chi-square.
TEST(RngTest, NextBelowUniformByChiSquare) {
  Rng rng(123);
  constexpr std::size_t kBuckets = 16;
  constexpr std::size_t kDraws = 160000;
  std::vector<double> counts(kBuckets, 0.0);
  for (std::size_t i = 0; i < kDraws; ++i) {
    counts[rng.NextBelow(kBuckets)] += 1.0;
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0.0;
  for (const double count : counts) {
    const double d = count - expected;
    chi2 += d * d / expected;
  }
  // 15 dof: reject above ~37 at alpha = 0.001.
  EXPECT_LT(chi2, 37.0);
}

TEST(RngTest, GaussianTailMass) {
  Rng rng(124);
  const int n = 200000;
  int beyond_2sigma = 0;
  for (int i = 0; i < n; ++i) {
    if (std::abs(rng.NextGaussian()) > 2.0) {
      ++beyond_2sigma;
    }
  }
  EXPECT_NEAR(static_cast<double>(beyond_2sigma) / n, 0.0455, 0.004);
}

}  // namespace
}  // namespace vrddram
