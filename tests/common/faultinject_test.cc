#include "common/faultinject.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.h"

namespace vrddram::fi {
namespace {

TEST(FaultPlanTest, EmptySpecNeverFires) {
  const FaultPlan plan = FaultPlan::Parse("", 1);
  EXPECT_TRUE(plan.empty());
  FaultScope scope(plan, "anything");
  EXPECT_FALSE(ShouldFire("any.site"));
}

TEST(FaultPlanTest, ParsesSitesAndKeys) {
  const FaultPlan plan = FaultPlan::Parse(
      "a.b:p=0.5,max=2;c.d:match=M1@50,attempt_lt=1; e.f ", 7);
  EXPECT_EQ(plan.seed(), 7u);
  ASSERT_EQ(plan.sites().size(), 3u);
  const SiteSpec* a = plan.Find("a.b");
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->probability, 0.5);
  EXPECT_EQ(a->max_fires, 2u);
  const SiteSpec* c = plan.Find("c.d");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->match, "M1@50");
  EXPECT_EQ(c->attempt_lt, 1u);
  const SiteSpec* e = plan.Find("e.f");
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->probability, 1.0);
  EXPECT_EQ(plan.Find("nope"), nullptr);
}

TEST(FaultPlanTest, MalformedSpecsAreFatal) {
  EXPECT_THROW(FaultPlan::Parse(":p=1", 0), FatalError);
  EXPECT_THROW(FaultPlan::Parse("a.b:p", 0), FatalError);
  EXPECT_THROW(FaultPlan::Parse("a.b:p=2", 0), FatalError);
  EXPECT_THROW(FaultPlan::Parse("a.b:p=-0.5", 0), FatalError);
  EXPECT_THROW(FaultPlan::Parse("a.b:max=abc", 0), FatalError);
  EXPECT_THROW(FaultPlan::Parse("a.b:mystery=1", 0), FatalError);
  EXPECT_THROW(FaultPlan::Parse("a.b;a.b", 0), FatalError);
}

TEST(FaultScopeTest, NoActiveScopeMeansNoFires) {
  EXPECT_FALSE(ShouldFire("a.b"));
}

TEST(FaultScopeTest, CertainFireRespectsBudgetAndMatch) {
  const FaultPlan plan = FaultPlan::Parse("a.b:max=2,match=M1", 3);
  {
    FaultScope scope(plan, "campaign/M1@50");
    EXPECT_TRUE(ShouldFire("a.b"));
    EXPECT_TRUE(ShouldFire("a.b"));
    EXPECT_FALSE(ShouldFire("a.b")) << "budget of 2 exhausted";
    EXPECT_FALSE(ShouldFire("c.d")) << "unconfigured site";
  }
  {
    FaultScope scope(plan, "campaign/S2@50");
    EXPECT_FALSE(ShouldFire("a.b")) << "label does not match M1";
  }
}

TEST(FaultScopeTest, AttemptGateMakesRetriesSucceed) {
  const FaultPlan plan = FaultPlan::Parse("a.b:attempt_lt=1", 3);
  {
    FaultScope first_attempt(plan, "shard", 0);
    EXPECT_TRUE(ShouldFire("a.b"));
  }
  {
    FaultScope retry(plan, "shard", 1);
    EXPECT_FALSE(ShouldFire("a.b"));
  }
}

TEST(FaultScopeTest, ProbabilisticScheduleIsReproduciblePerScope) {
  const FaultPlan plan = FaultPlan::Parse("a.b:p=0.3", 99);
  auto draw = [&](const std::string& label) {
    std::vector<bool> fires;
    FaultScope scope(plan, label);
    for (int i = 0; i < 64; ++i) {
      fires.push_back(ShouldFire("a.b"));
    }
    return fires;
  };
  const std::vector<bool> first = draw("shard-A");
  EXPECT_EQ(first, draw("shard-A")) << "same (label, attempt) replays";
  EXPECT_NE(first, draw("shard-B")) << "labels get independent streams";
}

TEST(FaultScopeTest, ScheduleIsIndependentOfThread) {
  const FaultPlan plan = FaultPlan::Parse("a.b:p=0.5", 42);
  auto draw = [&plan]() {
    std::vector<bool> fires;
    FaultScope scope(plan, "shard");
    for (int i = 0; i < 32; ++i) {
      fires.push_back(ShouldFire("a.b"));
    }
    return fires;
  };
  const std::vector<bool> here = draw();
  std::vector<bool> there;
  std::thread worker([&] { there = draw(); });
  worker.join();
  EXPECT_EQ(here, there);
}

TEST(FaultScopeTest, ScopesNest) {
  const FaultPlan outer_plan = FaultPlan::Parse("a.b", 1);
  const FaultPlan inner_plan = FaultPlan::Parse("c.d", 1);
  FaultScope outer(outer_plan, "outer");
  {
    FaultScope inner(inner_plan, "inner");
    EXPECT_FALSE(ShouldFire("a.b")) << "innermost scope answers";
    EXPECT_TRUE(ShouldFire("c.d"));
  }
  EXPECT_TRUE(ShouldFire("a.b")) << "outer scope restored";
}

}  // namespace
}  // namespace vrddram::fi
