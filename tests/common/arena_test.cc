// MonotonicArena: span allocation, alignment, value initialization,
// chunk growth, and the Reset() reuse contract the shard hot paths
// rely on (DESIGN.md §10).
#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace vrddram {
namespace {

TEST(MonotonicArenaTest, AllocatesValueInitializedSpans) {
  MonotonicArena arena;
  const std::span<double> doubles = arena.AllocSpan<double>(37);
  ASSERT_EQ(doubles.size(), 37u);
  for (const double v : doubles) {
    EXPECT_EQ(v, 0.0);
  }
  const std::span<std::uint32_t> ints = arena.AllocSpan<std::uint32_t>(5);
  ASSERT_EQ(ints.size(), 5u);
  for (const std::uint32_t v : ints) {
    EXPECT_EQ(v, 0u);
  }
  EXPECT_TRUE(arena.AllocSpan<double>(0).empty());
}

TEST(MonotonicArenaTest, SpansAreAlignedAndDisjoint) {
  MonotonicArena arena(256);
  const std::span<std::uint8_t> bytes = arena.AllocSpan<std::uint8_t>(3);
  const std::span<double> doubles = arena.AllocSpan<double>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(doubles.data()) %
                alignof(double),
            0u);
  // Writing one span never aliases the other.
  bytes[0] = 0xAB;
  doubles[0] = 1.5;
  EXPECT_EQ(bytes[0], 0xAB);
  EXPECT_EQ(doubles[0], 1.5);
}

TEST(MonotonicArenaTest, GrowsAcrossChunksAndOversizedRequests) {
  MonotonicArena arena(64);
  // Each allocation exceeds the chunk size: every one gets a dedicated
  // chunk and stays usable.
  const std::span<double> a = arena.AllocSpan<double>(32);  // 256 B
  const std::span<double> b = arena.AllocSpan<double>(64);  // 512 B
  a[31] = 1.0;
  b[63] = 2.0;
  EXPECT_EQ(a[31], 1.0);
  EXPECT_EQ(b[63], 2.0);
  EXPECT_GE(arena.bytes_reserved(), 256u + 512u);
}

TEST(MonotonicArenaTest, ResetReusesChunksWithoutNewReservations) {
  MonotonicArena arena(1 << 12);
  for (int i = 0; i < 4; ++i) {
    arena.AllocSpan<double>(100);
  }
  const std::size_t reserved = arena.bytes_reserved();
  ASSERT_GT(reserved, 0u);
  for (int pass = 0; pass < 8; ++pass) {
    arena.Reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    for (int i = 0; i < 4; ++i) {
      const std::span<double> span = arena.AllocSpan<double>(100);
      // Reset re-value-initializes nothing by itself; AllocSpan does.
      EXPECT_EQ(span[99], 0.0);
      span[99] = 7.0;
    }
    // Steady state: no pass after the first may reserve more memory.
    EXPECT_EQ(arena.bytes_reserved(), reserved);
  }
}

}  // namespace
}  // namespace vrddram
