// common/simd.h: the dispatched kernels must be bit-identical to the
// scalar reference loops on whatever CPU runs the suite — dispatch is
// a speed choice, never a results choice (DESIGN.md §6, §10).
#include "common/simd.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace vrddram {
namespace {

std::vector<double> RandomDoubles(Rng& rng, std::size_t n, double lo,
                                  double hi) {
  std::vector<double> out(n);
  for (double& v : out) {
    v = lo + (hi - lo) * rng.NextDouble();
  }
  return out;
}

// Bitwise comparison: NaN-safe and ulp-strict, unlike operator==.
void ExpectBitEqual(const std::vector<double>& a,
                    const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "element " << i;
  }
}

TEST(SimdDispatchTest, ScaleToMatchesScalarBitForBit) {
  Rng rng(MixSeed(0x51, 0x3d));
  // Sizes straddle the 4-lane AVX2 width to exercise the tail loop.
  for (const std::size_t n : {0u, 1u, 3u, 4u, 5u, 31u, 256u, 1001u}) {
    const std::vector<double> src =
        RandomDoubles(rng, n, -2000.0, 2000.0);
    std::vector<double> got(n, -1.0);
    std::vector<double> want(n, -2.0);
    simd::ScaleTo(got.data(), src.data(), -1.0e-3, n);
    simd::detail::ScaleToScalar(want.data(), src.data(), -1.0e-3, n);
    ExpectBitEqual(got, want);
  }
}

TEST(SimdDispatchTest, OccupancyBlendMatchesScalarBitForBit) {
  Rng rng(MixSeed(0x51, 0xb1));
  for (const std::size_t n : {0u, 1u, 4u, 7u, 64u, 333u}) {
    const std::vector<double> occ = RandomDoubles(rng, n, 0.0, 1.0);
    std::vector<double> prev(n);
    for (double& v : prev) {
      v = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
    }
    const std::vector<double> decay = RandomDoubles(rng, n, 0.0, 1.0);
    std::vector<double> got(n, -1.0);
    std::vector<double> want(n, -2.0);
    simd::OccupancyBlend(got.data(), occ.data(), prev.data(),
                         decay.data(), n);
    simd::detail::OccupancyBlendScalar(want.data(), occ.data(),
                                       prev.data(), decay.data(), n);
    ExpectBitEqual(got, want);
  }
}

TEST(SimdDispatchTest, ReportsCoherentTarget) {
  if (simd::HasAvx2()) {
    EXPECT_STREQ(simd::ActiveTarget(), "avx2");
  } else {
    EXPECT_STREQ(simd::ActiveTarget(), "scalar");
  }
}

}  // namespace
}  // namespace vrddram
