#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace vrddram {
namespace {

TEST(TableTest, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), FatalError);
}

TEST(TableTest, RejectsMismatchedRowArity) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.AddRow({"only-one"}), FatalError);
}

TEST(TableTest, PrintsAlignedColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecialCharacters) {
  TextTable table({"a"});
  table.AddRow({"plain"});
  table.AddRow({"with,comma"});
  table.AddRow({"with\"quote"});
  std::ostringstream os;
  table.PrintCsv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TableTest, CellFormatting) {
  EXPECT_EQ(Cell(3.14159, 2), "3.14");
  EXPECT_EQ(Cell(std::int64_t{-5}), "-5");
  EXPECT_EQ(Cell(std::uint64_t{7}), "7");
  EXPECT_EQ(Cell(42), "42");
}

TEST(TableTest, NumRows) {
  TextTable table({"a"});
  EXPECT_EQ(table.NumRows(), 0u);
  table.AddRow({"1"});
  table.AddRow({"2"});
  EXPECT_EQ(table.NumRows(), 2u);
}

}  // namespace
}  // namespace vrddram
