#include "ecc/gf256.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace vrddram::ecc {
namespace {

TEST(Gf256Test, AdditionIsXor) {
  const Gf256& gf = Gf256::Instance();
  EXPECT_EQ(gf.Add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(gf.Add(0xFF, 0xFF), 0);
}

TEST(Gf256Test, MultiplicativeIdentityAndZero) {
  const Gf256& gf = Gf256::Instance();
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(gf.Mul(static_cast<std::uint8_t>(a), 1),
              static_cast<std::uint8_t>(a));
    EXPECT_EQ(gf.Mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(Gf256Test, EveryNonzeroElementHasInverse) {
  const Gf256& gf = Gf256::Instance();
  for (unsigned a = 1; a < 256; ++a) {
    const std::uint8_t inv = gf.Inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(gf.Mul(static_cast<std::uint8_t>(a), inv), 1) << a;
  }
}

TEST(Gf256Test, DivisionInvertsMultiplication) {
  const Gf256& gf = Gf256::Instance();
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.NextBelow(256));
    const auto b = static_cast<std::uint8_t>(1 + rng.NextBelow(255));
    EXPECT_EQ(gf.Div(gf.Mul(a, b), b), a);
  }
}

TEST(Gf256Test, MultiplicationCommutesAndAssociates) {
  const Gf256& gf = Gf256::Instance();
  Rng rng(14);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.NextBelow(256));
    const auto b = static_cast<std::uint8_t>(rng.NextBelow(256));
    const auto c = static_cast<std::uint8_t>(rng.NextBelow(256));
    EXPECT_EQ(gf.Mul(a, b), gf.Mul(b, a));
    EXPECT_EQ(gf.Mul(gf.Mul(a, b), c), gf.Mul(a, gf.Mul(b, c)));
    // Distributivity over addition.
    EXPECT_EQ(gf.Mul(a, gf.Add(b, c)),
              gf.Add(gf.Mul(a, b), gf.Mul(a, c)));
  }
}

TEST(Gf256Test, ExpLogRoundTrip) {
  const Gf256& gf = Gf256::Instance();
  for (unsigned a = 1; a < 256; ++a) {
    EXPECT_EQ(gf.Exp(gf.Log(static_cast<std::uint8_t>(a))),
              static_cast<std::uint8_t>(a));
  }
  // alpha^255 == 1 (multiplicative group order).
  EXPECT_EQ(gf.Exp(255), 1);
  EXPECT_EQ(gf.Exp(0), 1);
  EXPECT_EQ(gf.Exp(-255), 1);
}

TEST(Gf256Test, PrimitiveElementGeneratesField) {
  const Gf256& gf = Gf256::Instance();
  std::set<std::uint8_t> seen;
  for (int i = 0; i < 255; ++i) {
    seen.insert(gf.Exp(i));
  }
  EXPECT_EQ(seen.size(), 255u);
}

TEST(Gf256Test, InvalidOperationsThrow) {
  const Gf256& gf = Gf256::Instance();
  EXPECT_THROW(gf.Inv(0), FatalError);
  EXPECT_THROW(gf.Div(5, 0), FatalError);
  EXPECT_THROW(gf.Log(0), FatalError);
}

}  // namespace
}  // namespace vrddram::ecc
