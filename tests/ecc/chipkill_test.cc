#include "ecc/chipkill.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace vrddram::ecc {
namespace {

std::array<std::uint8_t, 16> RandomData(Rng& rng) {
  std::array<std::uint8_t, 16> data{};
  for (auto& symbol : data) {
    symbol = static_cast<std::uint8_t>(rng.NextBelow(256));
  }
  return data;
}

TEST(ChipkillTest, CleanRoundTrip) {
  const ChipkillSsc codec;
  Rng rng(41);
  for (int i = 0; i < 200; ++i) {
    const auto data = RandomData(rng);
    const CodewordSsc word = codec.Encode(data);
    const SscDecodeResult result = codec.Decode(word);
    EXPECT_EQ(result.status, DecodeStatus::kClean);
    EXPECT_EQ(result.data, data);
  }
}

class ChipkillSymbolTest : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(ChipkillSymbolTest, AnySingleSymbolErrorIsCorrected) {
  const ChipkillSsc codec;
  Rng rng(42);
  const auto data = RandomData(rng);
  const CodewordSsc clean = codec.Encode(data);
  const std::size_t position = GetParam();

  // Try many error values at this symbol position, including
  // multi-bit-within-symbol patterns (a whole chip's output garbled).
  for (unsigned error = 1; error < 256; error += 11) {
    CodewordSsc corrupted = clean;
    corrupted.symbols[position] ^= static_cast<std::uint8_t>(error);
    const SscDecodeResult result = codec.Decode(corrupted);
    EXPECT_EQ(result.status, DecodeStatus::kCorrected)
        << "position " << position << " error 0x" << std::hex << error;
    EXPECT_EQ(result.data, data);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSymbolPositions, ChipkillSymbolTest,
                         ::testing::Range<std::size_t>(0, 18));

TEST(ChipkillTest, DoubleSymbolErrorsNeverDecodeToCleanSilently) {
  const ChipkillSsc codec;
  Rng rng(43);
  const auto data = RandomData(rng);
  const CodewordSsc clean = codec.Encode(data);

  int detected = 0;
  int miscorrected = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    CodewordSsc corrupted = clean;
    const std::size_t a = rng.NextBelow(18);
    std::size_t b = rng.NextBelow(18);
    while (b == a) {
      b = rng.NextBelow(18);
    }
    corrupted.symbols[a] ^=
        static_cast<std::uint8_t>(1 + rng.NextBelow(255));
    corrupted.symbols[b] ^=
        static_cast<std::uint8_t>(1 + rng.NextBelow(255));
    const SscDecodeResult result = codec.Decode(corrupted);
    // kClean would mean the corrupted word is a valid codeword, which
    // two symbol errors cannot produce (minimum distance 3).
    EXPECT_NE(result.status, DecodeStatus::kClean);
    if (result.status == DecodeStatus::kDetected) {
      ++detected;
    } else if (result.data != data) {
      ++miscorrected;
    }
  }
  // Both outcomes occur: some pairs alias to a valid single-symbol
  // correction (the Table 3 SSC "undetectable" pathway), some do not.
  EXPECT_GT(detected, 0);
  EXPECT_GT(miscorrected, 0);
}

TEST(ChipkillTest, CheckSymbolsMakeSyndromesZero) {
  const ChipkillSsc codec;
  Rng rng(44);
  const auto data = RandomData(rng);
  const CodewordSsc word = codec.Encode(data);
  // Data symbols preserved by systematic encoding.
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(word.symbols[i], data[i]);
  }
}

}  // namespace
}  // namespace vrddram::ecc
