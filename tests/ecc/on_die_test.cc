#include "ecc/on_die.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace vrddram::ecc {
namespace {

std::vector<std::uint8_t> RandomRow(std::size_t bytes, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> data(bytes);
  for (auto& byte : data) {
    byte = static_cast<std::uint8_t>(rng.NextBelow(256));
  }
  return data;
}

TEST(OnDieSecTest, CleanRowDecodesUntouched) {
  const std::vector<std::uint8_t> original = RandomRow(256, 1);
  std::vector<std::uint8_t> data = original;
  const auto parity = OnDieSec::EncodeParity(data);
  const auto stats = OnDieSec::DecodeInPlace(data, parity);
  EXPECT_EQ(data, original);
  EXPECT_EQ(stats.corrected_words, 0u);
  EXPECT_EQ(stats.uncorrectable_words, 0u);
}

TEST(OnDieSecTest, SingleBitPerWordCorrected) {
  const std::vector<std::uint8_t> original = RandomRow(256, 2);
  std::vector<std::uint8_t> data = original;
  const auto parity = OnDieSec::EncodeParity(original);
  // One flipped bit in each of three different words.
  data[0] ^= 0x01;
  data[9] ^= 0x80;
  data[250] ^= 0x10;
  const auto stats = OnDieSec::DecodeInPlace(data, parity);
  EXPECT_EQ(data, original);
  EXPECT_EQ(stats.corrected_words, 3u);
  EXPECT_EQ(stats.uncorrectable_words, 0u);
}

TEST(OnDieSecTest, DoubleBitWordDetectedNotCorrected) {
  const std::vector<std::uint8_t> original = RandomRow(64, 3);
  std::vector<std::uint8_t> data = original;
  const auto parity = OnDieSec::EncodeParity(original);
  data[16] ^= 0x03;  // two bits in the same 64-bit word
  const auto stats = OnDieSec::DecodeInPlace(data, parity);
  EXPECT_EQ(stats.uncorrectable_words, 1u);
  EXPECT_EQ(data[16], original[16] ^ 0x03) << "data passes through";
}

TEST(OnDieSecTest, EveryBitPositionCorrectable) {
  const std::vector<std::uint8_t> original = RandomRow(8, 4);
  const auto parity = OnDieSec::EncodeParity(original);
  for (std::size_t bit = 0; bit < 64; ++bit) {
    std::vector<std::uint8_t> data = original;
    data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const auto stats = OnDieSec::DecodeInPlace(data, parity);
    EXPECT_EQ(data, original) << "bit " << bit;
    EXPECT_EQ(stats.corrected_words, 1u);
  }
}

TEST(OnDieSecTest, ValidatesShapes) {
  std::vector<std::uint8_t> odd(7, 0);
  EXPECT_THROW(OnDieSec::EncodeParity(odd), FatalError);
  std::vector<std::uint8_t> data(16, 0);
  std::vector<std::uint8_t> bad_parity(3, 0);
  EXPECT_THROW(OnDieSec::DecodeInPlace(data, bad_parity), FatalError);
}

}  // namespace
}  // namespace vrddram::ecc
