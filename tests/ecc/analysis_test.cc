#include "ecc/analysis.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ecc/chipkill.h"
#include "ecc/hamming.h"

namespace vrddram::ecc {
namespace {

TEST(BinomialTest, PmfKnownValues) {
  EXPECT_NEAR(BinomialPmf(10, 0, 0.5), 1.0 / 1024.0, 1e-12);
  EXPECT_NEAR(BinomialPmf(10, 5, 0.5), 252.0 / 1024.0, 1e-12);
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 6, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 2, 0.0), 0.0);
}

TEST(BinomialTest, TailComplementsPmf) {
  double total = 0.0;
  for (std::size_t k = 0; k <= 20; ++k) {
    total += BinomialPmf(20, k, 0.3);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(BinomialTail(20, 0, 0.3), 1.0, 1e-12);
  EXPECT_NEAR(BinomialTail(20, 21, 0.3), 0.0, 1e-12);
  EXPECT_NEAR(BinomialTail(20, 3, 0.3),
              1.0 - BinomialPmf(20, 0, 0.3) - BinomialPmf(20, 1, 0.3) -
                  BinomialPmf(20, 2, 0.3),
              1e-12);
}

// Table 3 of the paper, at the empirically observed worst bit error
// rate of 7.6e-5 (5 bitflips in a 64 Kibit row).
TEST(AnalysisTest, Table3Sec) {
  const ErrorProbabilities p =
      AnalyzeCode(CodeKind::kSec, kPaperWorstBer);
  EXPECT_NEAR(p.uncorrectable, 1.48e-5, 0.05e-5);
  EXPECT_NEAR(p.undetectable, 1.48e-5, 0.05e-5);
  EXPECT_LT(p.detectable_uncorrectable, 0.0);  // N/A
}

TEST(AnalysisTest, Table3Secded) {
  const ErrorProbabilities p =
      AnalyzeCode(CodeKind::kSecded, kPaperWorstBer);
  EXPECT_NEAR(p.uncorrectable, 1.48e-5, 0.05e-5);
  EXPECT_NEAR(p.undetectable, 2.64e-8, 0.15e-8);
  EXPECT_NEAR(p.detectable_uncorrectable, 1.48e-5, 0.05e-5);
}

TEST(AnalysisTest, Table3Chipkill) {
  const ErrorProbabilities p =
      AnalyzeCode(CodeKind::kChipkill, kPaperWorstBer);
  EXPECT_NEAR(p.uncorrectable, 5.66e-5, 0.1e-5);
  EXPECT_NEAR(p.undetectable, 5.66e-5, 0.1e-5);
}

TEST(AnalysisTest, ProbabilitiesGrowWithBer) {
  for (const CodeKind kind :
       {CodeKind::kSec, CodeKind::kSecded, CodeKind::kChipkill}) {
    const double low = AnalyzeCode(kind, 1e-6).uncorrectable;
    const double high = AnalyzeCode(kind, 1e-4).uncorrectable;
    EXPECT_GT(high, low);
  }
}

// Monte Carlo cross-check: inject i.i.d. bit errors into real
// codewords and compare uncorrectable rates against the analytic
// model.
TEST(AnalysisTest, MonteCarloSecdedMatchesAnalytic) {
  const Hamming72 codec;
  Rng rng(55);
  const double ber = 2e-3;  // inflated so the MC converges quickly
  const int trials = 200000;
  int uncorrectable = 0;
  const std::uint64_t data = 0x1122334455667788ull;
  const Codeword72 clean = codec.Encode(data);
  for (int t = 0; t < trials; ++t) {
    Codeword72 word = clean;
    int flips = 0;
    for (std::size_t bit = 0; bit < 72; ++bit) {
      if (rng.NextBernoulli(ber)) {
        word.FlipBit(bit);
        ++flips;
      }
    }
    if (flips == 0) {
      continue;
    }
    const DecodeResult result = codec.Decode(word);
    if (result.status == DecodeStatus::kDetected ||
        result.data != data) {
      ++uncorrectable;
    }
  }
  const double analytic =
      AnalyzeCode(CodeKind::kSecded, ber).uncorrectable;
  EXPECT_NEAR(static_cast<double>(uncorrectable) / trials, analytic,
              analytic * 0.15);
}

TEST(AnalysisTest, MonteCarloChipkillMatchesAnalytic) {
  const ChipkillSsc codec;
  Rng rng(56);
  const double ber = 2e-3;
  const int trials = 100000;
  int uncorrectable = 0;
  std::array<std::uint8_t, 16> data{};
  for (std::size_t i = 0; i < 16; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 17);
  }
  const CodewordSsc clean = codec.Encode(data);
  for (int t = 0; t < trials; ++t) {
    CodewordSsc word = clean;
    for (std::size_t symbol = 0; symbol < 18; ++symbol) {
      for (int bit = 0; bit < 8; ++bit) {
        if (rng.NextBernoulli(ber)) {
          word.symbols[symbol] ^= static_cast<std::uint8_t>(1 << bit);
        }
      }
    }
    const SscDecodeResult result = codec.Decode(word);
    if (result.status == DecodeStatus::kDetected ||
        result.data != data) {
      ++uncorrectable;
    }
  }
  const double analytic =
      AnalyzeCode(CodeKind::kChipkill, ber).uncorrectable;
  EXPECT_NEAR(static_cast<double>(uncorrectable) / trials, analytic,
              analytic * 0.15);
}

TEST(AnalysisTest, Names) {
  EXPECT_EQ(ToString(CodeKind::kSec), "SEC");
  EXPECT_EQ(ToString(CodeKind::kSecded), "SECDED");
  EXPECT_EQ(ToString(CodeKind::kChipkill), "Chipkill-like (SSC)");
}

}  // namespace
}  // namespace vrddram::ecc
