#include "ecc/hamming.h"

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "common/rng.h"

namespace vrddram::ecc {
namespace {

TEST(HammingTest, ColumnsAreDistinctAndOddWeight) {
  const Hamming72 codec;
  std::set<std::uint8_t> seen;
  for (std::size_t i = 0; i < 72; ++i) {
    const std::uint8_t column = codec.ColumnOf(i);
    EXPECT_EQ(std::popcount(static_cast<unsigned>(column)) % 2, 1)
        << "Hsiao columns must have odd weight (position " << i << ")";
    EXPECT_TRUE(seen.insert(column).second)
        << "duplicate column at position " << i;
  }
}

TEST(HammingTest, CleanCodewordDecodesClean) {
  const Hamming72 codec;
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t data = rng.Next();
    const Codeword72 word = codec.Encode(data);
    const DecodeResult result = codec.Decode(word);
    EXPECT_EQ(result.status, DecodeStatus::kClean);
    EXPECT_EQ(result.data, data);
  }
}

class HammingSingleErrorTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HammingSingleErrorTest, EverySingleBitErrorIsCorrected) {
  const Hamming72 codec;
  const std::uint64_t data = 0xDEADBEEFCAFEBABEull;
  Codeword72 word = codec.Encode(data);
  word.FlipBit(GetParam());

  const DecodeResult secded = codec.Decode(word);
  EXPECT_EQ(secded.status, DecodeStatus::kCorrected);
  EXPECT_EQ(secded.data, data);

  const DecodeResult sec = codec.DecodeSecOnly(word);
  EXPECT_EQ(sec.status, DecodeStatus::kCorrected);
  EXPECT_EQ(sec.data, data);
}

INSTANTIATE_TEST_SUITE_P(AllPositions, HammingSingleErrorTest,
                         ::testing::Range<std::size_t>(0, 72));

TEST(HammingTest, SecdedDetectsAllDoubleErrors) {
  const Hamming72 codec;
  const std::uint64_t data = 0x0123456789ABCDEFull;
  for (std::size_t i = 0; i < 72; ++i) {
    for (std::size_t j = i + 1; j < 72; j += 7) {  // sampled pairs
      Codeword72 word = codec.Encode(data);
      word.FlipBit(i);
      word.FlipBit(j);
      const DecodeResult result = codec.Decode(word);
      EXPECT_EQ(result.status, DecodeStatus::kDetected)
          << "double error (" << i << ", " << j << ") must be detected";
    }
  }
}

TEST(HammingTest, SecSilentlyMishandlesDoubleErrors) {
  // A SEC decoder never reports detection; double errors either
  // miscorrect (wrong data, status kCorrected) or pass through
  // silently (status kClean, still-corrupted data).
  const Hamming72 codec;
  const std::uint64_t data = 0x5555AAAA33337777ull;
  int silent_corruptions = 0;
  for (std::size_t i = 0; i < 72; i += 3) {
    for (std::size_t j = i + 1; j < 72; j += 5) {
      Codeword72 word = codec.Encode(data);
      word.FlipBit(i);
      word.FlipBit(j);
      const DecodeResult result = codec.DecodeSecOnly(word);
      EXPECT_NE(result.status, DecodeStatus::kDetected);
      if (result.data != data) {
        ++silent_corruptions;
      }
    }
  }
  EXPECT_GT(silent_corruptions, 0);
}

TEST(HammingTest, TripleErrorsMayEscapeSecded) {
  // >= 3 errors can alias to a single-bit syndrome: SECDED then
  // "corrects" to wrong data (the paper's SECDED undetectable case).
  const Hamming72 codec;
  const std::uint64_t data = 0;
  int undetected = 0;
  int checked = 0;
  for (std::size_t i = 0; i < 24; ++i) {
    for (std::size_t j = 24; j < 48; j += 3) {
      for (std::size_t k = 48; k < 72; k += 5) {
        Codeword72 word = codec.Encode(data);
        word.FlipBit(i);
        word.FlipBit(j);
        word.FlipBit(k);
        const DecodeResult result = codec.Decode(word);
        ++checked;
        if (result.status == DecodeStatus::kCorrected &&
            result.data != data) {
          ++undetected;
        }
      }
    }
  }
  EXPECT_GT(undetected, 0) << "of " << checked << " triples";
}

TEST(HammingTest, BitAccessors) {
  Codeword72 word;
  word.data = 1;
  EXPECT_TRUE(word.GetBit(0));
  EXPECT_FALSE(word.GetBit(1));
  word.FlipBit(64);
  EXPECT_TRUE(word.GetBit(64));
  EXPECT_EQ(word.check, 1);
}

}  // namespace
}  // namespace vrddram::ecc
