/**
 * @file
 * End-to-end integration: Algorithm 1 executed against catalog devices
 * through the full stack (catalog -> device -> bender host -> profiler
 * -> analyses), checking the headline VRD phenomenology the paper
 * reports.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "bender/host.h"
#include "bender/thermal.h"
#include "core/campaign.h"
#include "core/min_rdt_mc.h"
#include "core/rdt_profiler.h"
#include "core/series_analysis.h"
#include "vrd/chip_catalog.h"

namespace vrddram {
namespace {

TEST(EndToEndTest, Algorithm1ProducesVrdOnCatalogDevice) {
  auto device = vrd::BuildDevice("H1");
  core::ProfilerConfig pc;
  core::RdtProfiler profiler(*device, pc);

  const auto victim = profiler.FindVictim(1, 4000);
  ASSERT_TRUE(victim.has_value());
  EXPECT_LT(victim->rdt_guess, 40000u);

  const auto series =
      profiler.MeasureSeries(victim->row, victim->rdt_guess, 1000);
  const core::SeriesAnalysis analysis = core::AnalyzeSeries(series);

  // Finding 1: the RDT changes over time.
  EXPECT_GT(analysis.unique_values, 1u);
  EXPECT_GT(analysis.max_over_min, 1.0);
  // Finding 3: consecutive measurements usually differ.
  EXPECT_GT(analysis.immediate_change_fraction, 0.4);
  // §4.1: no repeating patterns (ACF close to white noise).
  EXPECT_LT(analysis.acf_significant_fraction, 0.4);
}

TEST(EndToEndTest, MinimumRdtIsHardToFindWithFewMeasurements) {
  auto device = vrd::BuildDevice("M1");
  core::ProfilerConfig pc;
  core::RdtProfiler profiler(*device, pc);
  const auto victim = profiler.FindVictim(1, 4000);
  ASSERT_TRUE(victim.has_value());
  const auto series =
      profiler.MeasureSeries(victim->row, victim->rdt_guess, 1000);

  core::MinRdtSettings settings;
  settings.iterations = 4000;
  Rng rng(101);
  const core::RowMinRdtResult mc =
      core::AnalyzeRowSeries(series, settings, rng);
  // Finding 7/9: P(find min) grows with N and is small for N = 1.
  EXPECT_LT(mc.per_n.front().prob_find_min, 0.6);
  EXPECT_GT(mc.per_n.back().prob_find_min,
            mc.per_n.front().prob_find_min);
  // Finding 8: a single measurement overestimates the minimum.
  EXPECT_GT(mc.per_n.front().expected_norm_min, 1.0);
}

TEST(EndToEndTest, HbmChipsWorkThroughTheSameFlow) {
  auto device = vrd::BuildDevice("Chip0");
  // §3.1: disable the HBM2 on-die ECC before testing.
  device->SetOnDieEccEnabled(false);
  core::ProfilerConfig pc;
  core::RdtProfiler profiler(*device, pc);
  const auto victim = profiler.FindVictim(1, 4000);
  ASSERT_TRUE(victim.has_value());
  const auto series =
      profiler.MeasureSeries(victim->row, victim->rdt_guess, 300);
  EXPECT_GT(core::AnalyzeSeries(series).unique_values, 1u);
}

TEST(EndToEndTest, ThermalRigDrivesTemperatureDependence) {
  auto device = vrd::BuildDevice("M0");
  bender::TemperatureController rig(*device);
  core::ProfilerConfig pc;
  core::RdtProfiler profiler(*device, pc);
  const auto victim = profiler.FindVictim(1, 4000);
  ASSERT_TRUE(victim.has_value());

  rig.SettleTo(50.0);
  const auto series_50 =
      profiler.MeasureSeries(victim->row, victim->rdt_guess, 300);
  rig.SettleTo(80.0);
  const auto series_80 =
      profiler.MeasureSeries(victim->row, victim->rdt_guess, 300);

  const double mean_50 = core::AnalyzeSeries(series_50).mean;
  const double mean_80 = core::AnalyzeSeries(series_80).mean;
  // Finding 16: temperature changes the VRD profile. Direction is
  // cell-specific; only require a measurable change.
  EXPECT_NE(mean_50, mean_80);
}

TEST(EndToEndTest, RowPressNeedsFewerActivations) {
  auto device = vrd::BuildDevice("Chip0");
  device->SetOnDieEccEnabled(false);
  core::ProfilerConfig fast_pc;
  core::RdtProfiler fast(*device, fast_pc);
  const auto victim = fast.FindVictim(1, 4000);
  ASSERT_TRUE(victim.has_value());

  core::ProfilerConfig press_pc;
  press_pc.t_on = device->timing().tREFI;
  core::RdtProfiler press(*device, press_pc);
  const auto press_guess = press.GuessRdt(victim->row);
  ASSERT_TRUE(press_guess.has_value());
  // Table 7: HBM2 min observed RDT drops by >10x from tRAS to tREFI.
  EXPECT_LT(static_cast<double>(*press_guess),
            static_cast<double>(victim->rdt_guess) / 5.0);
}

TEST(EndToEndTest, CommandLevelFlowMatchesDeviceState) {
  // Run one full measurement through explicit DRAM Bender commands and
  // confirm the device ends precharged with consistent counts.
  auto device = vrd::BuildDevice("S2");
  bender::TestHost host(*device);
  core::ProfilerConfig pc;
  core::RdtProfiler profiler(*device, pc);
  const auto victim = profiler.FindVictim(1, 2000);
  ASSERT_TRUE(victim.has_value());

  // Initialization touches the victim's physical +-8 neighbourhood,
  // clipped at the bank edges.
  const dram::PhysicalRow phys =
      device->mapper().ToPhysical(victim->row);
  const std::uint64_t last = device->org().LargestRowAddress();
  std::uint64_t init_rows = 0;
  for (std::int64_t d = -8; d <= 8; ++d) {
    const std::int64_t target = static_cast<std::int64_t>(phys.value) + d;
    if (target >= 0 && target <= static_cast<std::int64_t>(last)) {
      ++init_rows;
    }
  }
  const auto before = device->counts();
  host.TestOnceExact(0, victim->row, dram::DataPattern::kCheckered0,
                     500, device->timing().tRAS);
  const auto after = device->counts();
  EXPECT_EQ(after.act - before.act, init_rows + 2 * 500u + 1u);
  EXPECT_EQ(after.pre - before.pre, init_rows + 2 * 500u + 1u);
  EXPECT_EQ(device->StateOf(0), dram::BankState::kIdle);
}

}  // namespace
}  // namespace vrddram

// Appended: on-die defense interactions with attack patterns.
#include "bender/attack_patterns.h"

namespace vrddram {
namespace {

TEST(EndToEndTest, TrrStopsDoubleSidedUnderRefresh) {
  // With periodic REF, the on-die TRR engine keeps refreshing the
  // hottest aggressor's neighbourhood: a double-sided attack paced by
  // refresh never accumulates enough disturbance. Disabling refresh
  // (the paper's §3.1 methodology) re-enables the bitflips.
  vrd::FaultProfile profile;
  profile.median_rdt = 3000.0;
  profile.weak_cells_mean = 8.0;
  profile.t_ras = dram::MakeDdr4_3200().tRAS;
  profile.measurement_noise_sigma = 0.0;
  profile.fast_trap_mean = 0.0;
  profile.rare_trap_prob = 0.0;
  profile.heavy_trap_prob = 0.0;

  auto run = [&](bool refresh_between_chunks) {
    dram::DeviceConfig config;
    config.org.num_banks = 1;
    config.org.rows_per_bank = 128;
    config.org.row_bytes = 256;
    config.seed = 4242;
    config.has_trr = true;
    auto engine = std::make_unique<vrd::TrapFaultEngine>(
        profile, config.seed, config.org);
    auto* raw = engine.get();
    dram::Device device(config, std::move(engine));

    dram::RowAddr victim = 0;
    double rdt = -1.0;
    for (dram::RowAddr row = 2; row < 126; ++row) {
      rdt = raw->MinFlipHammerCount(
          0, dram::PhysicalRow{row}, 0x55, 0xAA, device.timing().tRAS,
          50.0, device.encoding(), 0);
      if (rdt > 0.0 && rdt < 20000.0) {
        victim = row;
        break;
      }
    }
    EXPECT_GT(victim, 0u);

    device.BulkInitializeRow(0, victim, 0x55);
    device.BulkInitializeRow(0, victim - 1, 0xAA);
    device.BulkInitializeRow(0, victim + 1, 0xAA);

    // Hammer to 3x the RDT in quarters; optionally REF between chunks
    // (a realistic controller issues thousands of REFs in this span).
    const auto chunk = static_cast<std::uint64_t>(rdt * 0.75);
    for (int i = 0; i < 4; ++i) {
      device.HammerDoubleSided(0, victim, chunk,
                               device.timing().tRAS);
      if (refresh_between_chunks) {
        device.Refresh();
      }
    }
    device.Activate(0, victim);
    const auto data = device.ReadRow(0, victim);
    device.Precharge(0);
    int flips = 0;
    for (const std::uint8_t byte : data) {
      flips += std::popcount(static_cast<unsigned>(byte ^ 0x55));
    }
    return flips;
  };

  EXPECT_EQ(run(/*refresh_between_chunks=*/true), 0)
      << "TRR must protect the double-sided victim";
  EXPECT_GT(run(/*refresh_between_chunks=*/false), 0)
      << "disabling refresh disables TRR (the paper's methodology)";
}

TEST(EndToEndTest, AttackPatternsDriveTheFullStack) {
  auto device = vrd::BuildDevice("S2");
  core::ProfilerConfig pc;
  core::RdtProfiler profiler(*device, pc);
  // Start away from the bank edge: many-sided reaches +-5 rows.
  const auto victim = profiler.FindVictim(8, 4000);
  ASSERT_TRUE(victim.has_value());

  const bender::AttackPlan plan = bender::PlanAttack(
      *device, bender::AttackKind::kManySided, victim->row,
      /*hammers_per_aggressor=*/victim->rdt_guess * 2, /*sides=*/6);
  EXPECT_EQ(plan.aggressors.size(), 6u);
  bender::ExecuteAttack(*device, 0, plan, device->timing().tRAS);
  // The victim row materializes its damage on the next activation.
  device->Activate(0, victim->row);
  device->ReadRow(0, victim->row);
  device->Precharge(0);
  EXPECT_GT(device->counts().act, plan.hammers_per_aggressor * 6);
}

}  // namespace
}  // namespace vrddram
