/**
 * @file
 * The paper's 17 findings, asserted qualitatively against the
 * simulated chip population. One shared small-scale campaign feeds the
 * distributional findings; the single-series findings run Alg. 1
 * directly. Everything is deterministic at the fixed seed.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/campaign.h"
#include "core/min_rdt_mc.h"
#include "core/rdt_profiler.h"
#include "core/series_analysis.h"
#include "vrd/chip_catalog.h"

namespace vrddram {
namespace {

/// Shared multi-parameter campaign: 3 devices x 6 rows x 2 patterns x
/// 2 tAggOn x 2 temperatures x 300 measurements.
class FindingsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::CampaignConfig config;
    config.devices = {"H1", "M1", "S2"};
    config.rows_per_device = 6;
    config.measurements = 300;
    config.patterns = {dram::DataPattern::kCheckered0,
                       dram::DataPattern::kRowstripe1};
    config.t_ons = {core::TOnChoice::kMinTras, core::TOnChoice::kTrefi};
    config.temperatures = {50.0, 80.0};
    config.scan_rows_per_region = 48;
    config.base_seed = 2025;
    campaign_ = new core::CampaignResult(core::RunCampaign(config));

    // One long single-row series (Alg. 1 foundational setup).
    auto device = vrd::BuildDevice("H1", 2025);
    device->SetTemperature(80.0);
    core::ProfilerConfig pc;
    core::RdtProfiler profiler(*device, pc);
    const auto victim = profiler.FindVictim(1, 8192);
    ASSERT_TRUE(victim.has_value());
    series_ = new std::vector<std::int64_t>(
        profiler.MeasureSeries(victim->row, victim->rdt_guess, 20000));
  }

  static void TearDownTestSuite() {
    delete campaign_;
    delete series_;
    campaign_ = nullptr;
    series_ = nullptr;
  }

  static const core::CampaignResult& campaign() { return *campaign_; }
  static const std::vector<std::int64_t>& series() { return *series_; }

  /// Median across rows of the expected normalized min at N = 1 for
  /// records matching `predicate`.
  template <typename Predicate>
  static double MedianNormMinN1(Predicate predicate) {
    core::MinRdtSettings settings;
    settings.sample_sizes = {1};
    settings.iterations = 1500;
    Rng rng(99);
    std::vector<double> values;
    for (const core::SeriesRecord& record : campaign().records) {
      if (!predicate(record)) {
        continue;
      }
      values.push_back(core::AnalyzeRowSeries(record.series, settings,
                                              rng)
                           .per_n[0]
                           .expected_norm_min);
    }
    EXPECT_FALSE(values.empty());
    return stats::Median(values);
  }

  static core::CampaignResult* campaign_;
  static std::vector<std::int64_t>* series_;
};

core::CampaignResult* FindingsTest::campaign_ = nullptr;
std::vector<std::int64_t>* FindingsTest::series_ = nullptr;

TEST_F(FindingsTest, Finding01RdtChangesOverTime) {
  const core::SeriesAnalysis a = core::AnalyzeSeries(series());
  EXPECT_GT(a.unique_values, 1u);
  EXPECT_GT(a.max_over_min, 1.0);
}

TEST_F(FindingsTest, Finding02RdtHasMultipleStates) {
  const core::SeriesAnalysis a = core::AnalyzeSeries(series());
  EXPECT_GE(a.unique_values, 5u);
  // Values accumulate around a mean: the modal bin is interior-heavy.
  EXPECT_GT(a.mean, static_cast<double>(a.min_rdt));
  EXPECT_LT(a.mean, static_cast<double>(a.max_rdt));
}

TEST_F(FindingsTest, Finding03RdtChangesFrequently) {
  const core::SeriesAnalysis a = core::AnalyzeSeries(series());
  EXPECT_GT(a.immediate_change_fraction, 0.5);
  // Longer runs are rarer than immediate changes.
  const auto& counts = a.run_lengths.counts;
  ASSERT_TRUE(counts.contains(1));
  for (const auto& [length, count] : counts) {
    if (length >= 4) {
      EXPECT_LT(count, counts.at(1));
    }
  }
}

TEST_F(FindingsTest, Finding04ChangesAreUnpredictable) {
  const core::SeriesAnalysis a = core::AnalyzeSeries(series());
  // The ACF stays close to a white-noise band: no repeating patterns.
  EXPECT_LT(a.acf_significant_fraction, 0.35);
}

TEST_F(FindingsTest, Finding05AllRowsExhibitVariation) {
  std::map<std::pair<std::string, dram::RowAddr>, double> max_cv;
  for (const core::SeriesRecord& record : campaign().records) {
    const auto a = core::AnalyzeSeries(record.series, 1);
    auto& slot = max_cv[{record.device, record.row}];
    slot = std::max(slot, a.cv);
  }
  for (const auto& [key, cv] : max_cv) {
    EXPECT_GT(cv, 0.0) << key.first << " row " << key.second;
  }
}

TEST_F(FindingsTest, Finding06MostRowsVaryUnderAllCombos) {
  std::map<std::pair<std::string, dram::RowAddr>, bool> varies_all;
  for (const core::SeriesRecord& record : campaign().records) {
    const auto a = core::AnalyzeSeries(record.series, 1);
    auto [it, inserted] =
        varies_all.try_emplace({record.device, record.row}, true);
    it->second = it->second && (a.unique_values > 1);
  }
  std::size_t all = 0;
  for (const auto& [key, varies] : varies_all) {
    all += varies ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(all) /
                static_cast<double>(varies_all.size()),
            0.9);
}

TEST_F(FindingsTest, Finding07MinUnlikelyWithOneMeasurement) {
  core::MinRdtSettings settings;
  settings.sample_sizes = {1};
  settings.iterations = 2000;
  Rng rng(7);
  std::vector<double> probs;
  for (const core::SeriesRecord& record : campaign().records) {
    probs.push_back(
        core::AnalyzeRowSeries(record.series, settings, rng)
            .per_n[0]
            .prob_find_min);
  }
  EXPECT_LT(stats::Median(probs), 0.25);
}

TEST_F(FindingsTest, Finding08SingleMeasurementOverestimatesMin) {
  const double median = MedianNormMinN1(
      [](const core::SeriesRecord&) { return true; });
  EXPECT_GT(median, 1.0);
}

TEST_F(FindingsTest, Finding09ProbabilityGrowsWithN) {
  core::MinRdtSettings settings;
  settings.sample_sizes = {1, 10, 100};
  settings.iterations = 1500;
  Rng rng(8);
  double p1 = 0.0;
  double p10 = 0.0;
  double p100 = 0.0;
  for (const core::SeriesRecord& record : campaign().records) {
    const auto mc =
        core::AnalyzeRowSeries(record.series, settings, rng);
    p1 += mc.per_n[0].prob_find_min;
    p10 += mc.per_n[1].prob_find_min;
    p100 += mc.per_n[2].prob_find_min;
  }
  EXPECT_LT(p1, p10);
  EXPECT_LT(p10, p100);
}

TEST_F(FindingsTest, Finding10ProfileVariesAcrossChips) {
  std::set<int> medians;
  for (const char* device : {"H1", "M1", "S2"}) {
    const double median = MedianNormMinN1(
        [device](const core::SeriesRecord& record) {
          return record.device == device;
        });
    medians.insert(static_cast<int>(median * 1000.0));
  }
  EXPECT_GT(medians.size(), 1u);
}

TEST_F(FindingsTest, Finding11VrdWorsensWithTechnology) {
  // Separate quick campaign: Mfr. M's 16Gb-E (M0) vs 16Gb-F (M1).
  core::CampaignConfig config;
  config.devices = {"M0", "M1"};
  config.rows_per_device = 6;
  config.measurements = 300;
  config.scan_rows_per_region = 48;
  config.base_seed = 2025;
  const core::CampaignResult result = core::RunCampaign(config);

  core::MinRdtSettings settings;
  settings.sample_sizes = {1};
  settings.iterations = 1500;
  Rng rng(11);
  std::map<std::string, std::vector<double>> norm;
  for (const core::SeriesRecord& record : result.records) {
    norm[record.device].push_back(
        core::AnalyzeRowSeries(record.series, settings, rng)
            .per_n[0]
            .expected_norm_min);
  }
  EXPECT_LT(stats::Median(norm["M0"]), stats::Median(norm["M1"]));
}

TEST_F(FindingsTest, Finding12ProfileChangesWithDataPattern) {
  const double checkered = MedianNormMinN1(
      [](const core::SeriesRecord& r) {
        return r.pattern == dram::DataPattern::kCheckered0;
      });
  const double rowstripe = MedianNormMinN1(
      [](const core::SeriesRecord& r) {
        return r.pattern == dram::DataPattern::kRowstripe1;
      });
  EXPECT_NE(checkered, rowstripe);
}

TEST_F(FindingsTest, Finding13NoSingleWorstPattern) {
  // Separate campaign over all four data patterns and six devices
  // across the three manufacturers: the pattern with the worst median
  // profile must differ across chips (per-cell coupling jitter makes
  // the worst pattern a property of the individual device, not of the
  // suite).
  core::CampaignConfig config;
  config.devices = {"H1", "H3", "M0", "M1", "S2", "S5"};
  config.rows_per_device = 6;
  config.measurements = 300;
  config.patterns.assign(dram::kAllDataPatterns,
                         dram::kAllDataPatterns + 4);
  config.scan_rows_per_region = 48;
  config.base_seed = 2025;
  const core::CampaignResult result = core::RunCampaign(config);

  std::set<int> worst;
  for (const std::string& device : config.devices) {
    int worst_pattern = -1;
    double worst_median = 0.0;
    for (const dram::DataPattern pattern : config.patterns) {
      core::MinRdtSettings settings;
      settings.sample_sizes = {1};
      settings.iterations = 1500;
      Rng rng(99);
      std::vector<double> values;
      for (const core::SeriesRecord& record : result.records) {
        if (record.device != device || record.pattern != pattern) {
          continue;
        }
        values.push_back(
            core::AnalyzeRowSeries(record.series, settings, rng)
                .per_n[0]
                .expected_norm_min);
      }
      ASSERT_FALSE(values.empty());
      const double median = stats::Median(values);
      if (median > worst_median) {
        worst_median = median;
        worst_pattern = static_cast<int>(pattern);
      }
    }
    worst.insert(worst_pattern);
  }
  EXPECT_GT(worst.size(), 1u)
      << "the worst pattern must differ across chips";
}

TEST_F(FindingsTest, Finding14And15ProfileChangesWithTAggOn) {
  const double tras = MedianNormMinN1(
      [](const core::SeriesRecord& r) {
        return r.t_on == core::TOnChoice::kMinTras;
      });
  const double trefi = MedianNormMinN1(
      [](const core::SeriesRecord& r) {
        return r.t_on == core::TOnChoice::kTrefi;
      });
  EXPECT_NE(tras, trefi);
}

TEST_F(FindingsTest, Finding16ProfileChangesWithTemperature) {
  const double cold = MedianNormMinN1(
      [](const core::SeriesRecord& r) { return r.temperature < 60.0; });
  const double hot = MedianNormMinN1(
      [](const core::SeriesRecord& r) { return r.temperature > 60.0; });
  EXPECT_NE(cold, hot);
}

TEST_F(FindingsTest, Finding17TrueAndAntiCellsBehaveAlike) {
  // Group the campaign's rows by their encoding: the CV distributions
  // of the two classes overlap (medians within a small factor).
  auto device = vrd::BuildDevice("M1", 2025);
  std::map<bool, std::vector<double>> cv_by_class;
  for (const core::SeriesRecord& record : campaign().records) {
    if (record.device != "M1") {
      continue;
    }
    const auto phys = device->mapper().ToPhysical(record.row);
    const bool anti = device->encoding().RowEncoding(phys) ==
                      dram::CellEncoding::kAntiCell;
    cv_by_class[anti].push_back(
        core::AnalyzeSeries(record.series, 1).cv);
  }
  if (cv_by_class[true].empty() || cv_by_class[false].empty()) {
    GTEST_SKIP() << "sampled rows are all one encoding class";
  }
  const double ratio = stats::Median(cv_by_class[true]) /
                       stats::Median(cv_by_class[false]);
  EXPECT_GT(ratio, 0.2);
  EXPECT_LT(ratio, 5.0);
}

}  // namespace
}  // namespace vrddram
