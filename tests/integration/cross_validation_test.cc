/**
 * @file
 * Cross-validation between independent implementations: the Appendix A
 * analytic TestTimeModel versus the command-level Device path, and the
 * Monte Carlo resampler versus its closed forms on real campaign data.
 */
#include <gtest/gtest.h>

#include "core/rdt_profiler.h"
#include "core/test_time_model.h"
#include "stats/monte_carlo.h"
#include "vrd/chip_catalog.h"

namespace vrddram {
namespace {

TEST(CrossValidationTest, TimeModelMatchesDeviceCommandPath) {
  // One RDT measurement = init 3 rows + hammer + read back. The
  // analytic model and the device's scheduler are written
  // independently; their durations must agree closely.
  dram::DeviceConfig config;
  config.org = dram::MakeDdr4Org(8, 8, 8);
  config.timing = dram::MakeDdr4_3200();
  config.seed = 5;
  config.has_trr = false;
  dram::Device device(config);

  const std::uint64_t hammers = 5000;
  const Tick t_on = device.timing().tRAS;
  const Tick start = device.Now();
  device.BulkInitializeRow(0, 99, 0x55);
  device.BulkInitializeRow(0, 98, 0xAA);
  device.BulkInitializeRow(0, 100, 0xAA);
  device.HammerDoubleSided(0, 99, hammers, t_on);
  device.Activate(0, 99);
  device.ReadRow(0, 99);
  device.Precharge(0);
  const double device_seconds = units::ToSeconds(device.Now() - start);

  const core::TestTimeModel model(dram::MakeDdr4_3200(),
                                  dram::MakeDdr5Currents(),
                                  /*bursts_per_row=*/128);
  const double model_seconds =
      model.MeasurementCost(hammers, t_on).seconds;

  EXPECT_NEAR(model_seconds / device_seconds, 1.0, 0.05)
      << "model " << model_seconds << " s vs device " << device_seconds
      << " s";
}

TEST(CrossValidationTest, MonteCarloMatchesClosedFormOnRealSeries) {
  auto device = vrd::BuildDevice("S2", 2025);
  core::ProfilerConfig pc;
  core::RdtProfiler profiler(*device, pc);
  const auto victim = profiler.FindVictim(1, 4000);
  ASSERT_TRUE(victim.has_value());
  const auto series =
      profiler.MeasureSeries(victim->row, victim->rdt_guess, 800);

  std::vector<std::int64_t> valid;
  for (const std::int64_t v : series) {
    if (v >= 0) {
      valid.push_back(v);
    }
  }
  Rng rng(3);
  for (const std::size_t n : {1u, 10u, 100u}) {
    const auto mc = stats::SampleMinStatistics(valid, n, 20000, rng);
    EXPECT_NEAR(mc.prob_find_min, stats::ExactProbFindMin(valid, n),
                0.02)
        << "N=" << n;
    EXPECT_NEAR(mc.expected_norm_min,
                stats::ExactExpectedNormalizedMin(valid, n), 0.02)
        << "N=" << n;
  }
}

TEST(CrossValidationTest, AnalyticSweepDurationMatchesBulkSweep) {
  // The analytic profiler sleeps for the duration the bulk sweep would
  // take; measure both on identical twins and compare.
  auto analytic_device = vrd::BuildDevice("S2", 77);
  auto bulk_device = vrd::BuildDevice("S2", 77);

  core::ProfilerConfig seed_pc;
  core::RdtProfiler seeder(*analytic_device, seed_pc);
  const auto victim = seeder.FindVictim(1, 4000);
  ASSERT_TRUE(victim.has_value());

  core::ProfilerConfig analytic_pc;
  analytic_pc.mode = core::SweepMode::kAnalytic;
  core::RdtProfiler analytic(*analytic_device, analytic_pc);
  core::ProfilerConfig bulk_pc;
  bulk_pc.mode = core::SweepMode::kBulk;
  core::RdtProfiler bulk(*bulk_device, bulk_pc);

  const Tick a0 = analytic_device->Now();
  const Tick b0 = bulk_device->Now();
  analytic.MeasureSeries(victim->row, victim->rdt_guess, 20);
  bulk.MeasureSeries(victim->row, victim->rdt_guess, 20);
  const double a_elapsed =
      units::ToSeconds(analytic_device->Now() - a0);
  const double b_elapsed = units::ToSeconds(bulk_device->Now() - b0);
  // Different random flip points shift where each sweep stops; the
  // totals still have to be the same order.
  EXPECT_NEAR(a_elapsed / b_elapsed, 1.0, 0.30)
      << a_elapsed << " vs " << b_elapsed;
}

}  // namespace
}  // namespace vrddram
