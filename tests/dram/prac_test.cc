// In-device PRAC: per-row activation counters, ALERT_n, and the
// controller back-off protecting victims (JESD79-5C semantics).
#include <gtest/gtest.h>

#include "common/error.h"
#include "dram/device.h"
#include "vrd/trap_engine.h"

namespace vrddram::dram {
namespace {

DeviceConfig PracConfig() {
  DeviceConfig config;
  config.org.num_banks = 2;
  config.org.rows_per_bank = 128;
  config.org.row_bytes = 256;
  config.seed = 55;
  config.has_trr = false;
  config.has_prac = true;
  return config;
}

TEST(PracTest, DisabledWithoutHardware) {
  DeviceConfig config = PracConfig();
  config.has_prac = false;
  Device device(config);
  EXPECT_THROW(device.SetPracThreshold(100), FatalError);
  EXPECT_THROW(device.ServiceAlert(), FatalError);
  EXPECT_FALSE(device.AlertPending());
}

TEST(PracTest, CountersTrackActivations) {
  Device device(PracConfig());
  device.SetPracThreshold(1000000);  // count, never alert
  device.HammerSingleSided(0, 10, 500, device.timing().tRAS);
  EXPECT_EQ(device.PracCountOf(0, PhysicalRow{10}), 500u);
  device.Activate(0, 10);
  device.Precharge(0);
  EXPECT_EQ(device.PracCountOf(0, PhysicalRow{10}), 501u);
  // Other rows and banks unaffected.
  EXPECT_EQ(device.PracCountOf(0, PhysicalRow{11}), 0u);
  EXPECT_EQ(device.PracCountOf(1, PhysicalRow{10}), 0u);
}

TEST(PracTest, AlertRaisedAtThreshold) {
  Device device(PracConfig());
  device.SetPracThreshold(100);
  device.HammerSingleSided(0, 10, 99, device.timing().tRAS);
  EXPECT_FALSE(device.AlertPending());
  device.HammerSingleSided(0, 10, 1, device.timing().tRAS);
  EXPECT_TRUE(device.AlertPending());
}

TEST(PracTest, ZeroThresholdNeverAlerts) {
  Device device(PracConfig());
  device.SetPracThreshold(0);
  device.HammerSingleSided(0, 10, 5000, device.timing().tRAS);
  EXPECT_FALSE(device.AlertPending());
}

TEST(PracTest, ServiceAlertResetsCountersAndTakesTime) {
  Device device(PracConfig());
  device.SetPracThreshold(100);
  device.HammerDoubleSided(0, 20, 150, device.timing().tRAS);
  ASSERT_TRUE(device.AlertPending());
  const Tick before = device.Now();
  device.ServiceAlert();
  EXPECT_FALSE(device.AlertPending());
  // Both aggressors (rows 19 and 21) were above threshold.
  EXPECT_EQ(device.PracCountOf(0, PhysicalRow{19}), 0u);
  EXPECT_EQ(device.PracCountOf(0, PhysicalRow{21}), 0u);
  EXPECT_GE(device.Now() - before, 2 * device.timing().tRFC);
}

TEST(PracTest, BackOffPreventsBitflips) {
  // A PRAC-protected device serviced at its threshold never lets the
  // victim accumulate enough disturbance; an unprotected one flips.
  vrd::FaultProfile profile;
  profile.median_rdt = 3000.0;
  profile.weak_cells_mean = 8.0;
  profile.t_ras = MakeDdr4_3200().tRAS;
  profile.measurement_noise_sigma = 0.0;
  profile.fast_trap_mean = 0.0;
  profile.rare_trap_prob = 0.0;
  profile.heavy_trap_prob = 0.0;

  auto run = [&](bool protect) {
    DeviceConfig config = PracConfig();
    auto engine = std::make_unique<vrd::TrapFaultEngine>(
        profile, config.seed, config.org);
    auto* raw = engine.get();
    Device device(config, std::move(engine));

    // A victim with a deterministic RDT under this setup.
    RowAddr victim = 0;
    double rdt = -1.0;
    for (RowAddr row = 2; row < 126; ++row) {
      rdt = raw->MinFlipHammerCount(
          0, PhysicalRow{row}, 0x55, 0xAA, device.timing().tRAS, 50.0,
          device.encoding(), 0);
      if (rdt > 0.0 && rdt < 20000.0) {
        victim = row;
        break;
      }
    }
    EXPECT_GT(victim, 0u);

    device.SetPracThreshold(
        static_cast<std::uint64_t>(rdt * 0.5));  // 50% guardband
    device.BulkInitializeRow(0, victim, 0x55);
    device.BulkInitializeRow(0, victim - 1, 0xAA);
    device.BulkInitializeRow(0, victim + 1, 0xAA);

    // Hammer far beyond the RDT in chunks; the controller services
    // ALERT_n promptly when protection is on.
    const auto chunk = static_cast<std::uint64_t>(rdt * 0.25);
    for (int i = 0; i < 12; ++i) {
      device.HammerDoubleSided(0, victim, chunk,
                               device.timing().tRAS);
      if (protect && device.AlertPending()) {
        device.ServiceAlert();
      }
    }
    device.Activate(0, victim);
    const auto data = device.ReadRow(0, victim);
    device.Precharge(0);
    int flips = 0;
    for (const std::uint8_t byte : data) {
      flips += std::popcount(static_cast<unsigned>(byte ^ 0x55));
    }
    return flips;
  };

  EXPECT_EQ(run(/*protect=*/true), 0);
  EXPECT_GT(run(/*protect=*/false), 0);
}

}  // namespace
}  // namespace vrddram::dram
