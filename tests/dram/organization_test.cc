#include "dram/organization.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vrddram::dram {
namespace {

TEST(OrganizationTest, Ddr4EightGigabitX8) {
  const Organization org = MakeDdr4Org(8, 8, 8);
  EXPECT_EQ(org.num_banks, 16u);
  EXPECT_EQ(org.row_bytes, 8192u);  // 64 Kibit module-level rows (§6.4)
  EXPECT_EQ(org.rows_per_bank, 65536u);
  // Total chip capacity must equal the density.
  const std::uint64_t page_bits_per_chip =
      static_cast<std::uint64_t>(org.row_bytes) * 8 / org.chips_per_rank;
  EXPECT_EQ(static_cast<std::uint64_t>(org.num_banks) *
                org.rows_per_bank * page_bits_per_chip,
            8ull << 30);
}

TEST(OrganizationTest, Ddr4SixteenGigabitX8HasMoreRows) {
  const Organization org8 = MakeDdr4Org(8, 8, 8);
  const Organization org16 = MakeDdr4Org(16, 8, 8);
  EXPECT_EQ(org16.rows_per_bank, 2 * org8.rows_per_bank);
}

TEST(OrganizationTest, X16HasFewerBanks) {
  const Organization org = MakeDdr4Org(16, 16, 4);
  EXPECT_EQ(org.num_banks, 8u);
}

TEST(OrganizationTest, Hbm2Channel) {
  const Organization org = MakeHbm2Org();
  EXPECT_EQ(org.num_banks, 16u);
  EXPECT_EQ(org.row_bytes, 2048u);
  EXPECT_TRUE(org.ValidRow(org.rows_per_bank - 1));
  EXPECT_FALSE(org.ValidRow(org.rows_per_bank));
}

TEST(OrganizationTest, Validators) {
  const Organization org = MakeDdr4Org(8, 8, 8);
  EXPECT_TRUE(org.ValidBank(15));
  EXPECT_FALSE(org.ValidBank(16));
  EXPECT_EQ(org.LargestRowAddress(), org.rows_per_bank - 1);
  EXPECT_EQ(org.BankBytes(),
            static_cast<std::uint64_t>(org.rows_per_bank) * 8192);
}

TEST(OrganizationTest, RejectsUnsupportedGeometry) {
  EXPECT_THROW(MakeDdr4Org(8, 4, 8), FatalError);
  EXPECT_THROW(MakeDdr4Org(32, 8, 8), FatalError);
}

TEST(OrganizationTest, Describe) {
  const Organization org = MakeDdr4Org(8, 8, 8);
  EXPECT_NE(org.Describe().find("8Gb"), std::string::npos);
}

}  // namespace
}  // namespace vrddram::dram
