#include "dram/types.h"

#include <gtest/gtest.h>

namespace vrddram::dram {
namespace {

// Table 2 of the paper.
TEST(TypesTest, Table2PatternBytes) {
  EXPECT_EQ(VictimByte(DataPattern::kRowstripe0), 0x00);
  EXPECT_EQ(AggressorByte(DataPattern::kRowstripe0), 0xFF);
  EXPECT_EQ(SurroundByte(DataPattern::kRowstripe0), 0x00);

  EXPECT_EQ(VictimByte(DataPattern::kRowstripe1), 0xFF);
  EXPECT_EQ(AggressorByte(DataPattern::kRowstripe1), 0x00);
  EXPECT_EQ(SurroundByte(DataPattern::kRowstripe1), 0xFF);

  EXPECT_EQ(VictimByte(DataPattern::kCheckered0), 0x55);
  EXPECT_EQ(AggressorByte(DataPattern::kCheckered0), 0xAA);
  EXPECT_EQ(SurroundByte(DataPattern::kCheckered0), 0x55);

  EXPECT_EQ(VictimByte(DataPattern::kCheckered1), 0xAA);
  EXPECT_EQ(AggressorByte(DataPattern::kCheckered1), 0x55);
  EXPECT_EQ(SurroundByte(DataPattern::kCheckered1), 0xAA);
}

TEST(TypesTest, AggressorsAlwaysOpposeVictims) {
  for (const DataPattern p : kAllDataPatterns) {
    EXPECT_EQ(VictimByte(p) ^ AggressorByte(p), 0xFF);
  }
}

TEST(TypesTest, PatternNames) {
  EXPECT_EQ(ToString(DataPattern::kRowstripe0), "Rowstripe0");
  EXPECT_EQ(ToString(DataPattern::kCheckered1), "Checkered1");
}

TEST(TypesTest, BitFlipIndexing) {
  const BitFlip flip{/*byte_offset=*/3, /*bit=*/5};
  EXPECT_EQ(flip.BitIndex(), 29u);
  EXPECT_EQ(flip, (BitFlip{3, 5}));
  EXPECT_NE(flip, (BitFlip{3, 4}));
}

TEST(TypesTest, PhysicalRowComparable) {
  EXPECT_EQ(PhysicalRow{5}, PhysicalRow{5});
  EXPECT_LT(PhysicalRow{4}, PhysicalRow{5});
}

}  // namespace
}  // namespace vrddram::dram

namespace vrddram::dram {
namespace {

TEST(TypesTest, DiffBitsFindsEveryFlippedBit) {
  std::vector<std::uint8_t> data(16, 0x55);
  data[3] ^= 0x01;   // bit 0
  data[3] ^= 0x80;   // bit 7 (same byte)
  data[10] ^= 0x10;  // bit 4
  const auto flips = DiffBits(data, 0x55);
  ASSERT_EQ(flips.size(), 3u);
  EXPECT_EQ(flips[0], (BitFlip{3, 0}));
  EXPECT_EQ(flips[1], (BitFlip{3, 7}));
  EXPECT_EQ(flips[2], (BitFlip{10, 4}));
  EXPECT_EQ(CountDiffBits(data, 0x55), 3u);
}

TEST(TypesTest, DiffBitsCleanData) {
  const std::vector<std::uint8_t> data(32, 0xAA);
  EXPECT_TRUE(DiffBits(data, 0xAA).empty());
  EXPECT_EQ(CountDiffBits(data, 0xAA), 0u);
  // Fully inverted: every bit differs.
  EXPECT_EQ(CountDiffBits(data, 0x55), 32u * 8u);
}

}  // namespace
}  // namespace vrddram::dram
