#include "dram/bank.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vrddram::dram {
namespace {

class BankTest : public ::testing::Test {
 protected:
  BankTest() : timing_(MakeDdr4_3200()), bank_(&timing_) {}
  TimingParams timing_;
  Bank bank_;
};

TEST_F(BankTest, StartsIdle) {
  EXPECT_EQ(bank_.state(), BankState::kIdle);
}

TEST_F(BankTest, ActivateOpensRow) {
  bank_.Activate(PhysicalRow{42}, 0);
  EXPECT_EQ(bank_.state(), BankState::kActive);
  EXPECT_EQ(bank_.open_row().value, 42u);
}

TEST_F(BankTest, DoubleActivateThrows) {
  bank_.Activate(PhysicalRow{1}, 0);
  EXPECT_THROW(bank_.Activate(PhysicalRow{2}, timing_.tRC), FatalError);
}

TEST_F(BankTest, PrechargeIdleThrows) {
  EXPECT_THROW(bank_.Precharge(100), FatalError);
}

TEST_F(BankTest, PrechargeHonorsTras) {
  bank_.Activate(PhysicalRow{1}, 0);
  // Earliest PRE is tRAS after ACT.
  EXPECT_EQ(bank_.EarliestPrecharge(0), timing_.tRAS);
  EXPECT_THROW(bank_.Precharge(timing_.tRAS - 1), FatalError);
}

TEST_F(BankTest, PrechargeReturnsOpenTime) {
  bank_.Activate(PhysicalRow{1}, 0);
  const Tick open_time = bank_.Precharge(timing_.tRAS + 1000);
  EXPECT_EQ(open_time, timing_.tRAS + 1000);
  EXPECT_EQ(bank_.state(), BankState::kIdle);
}

TEST_F(BankTest, ActToActHonorsTrc) {
  bank_.Activate(PhysicalRow{1}, 0);
  bank_.Precharge(timing_.tRAS);
  EXPECT_EQ(bank_.EarliestActivate(0), timing_.tRAS + timing_.tRP);
}

TEST_F(BankTest, ReadAfterActivateHonorsTrcd) {
  bank_.Activate(PhysicalRow{1}, 0);
  EXPECT_EQ(bank_.EarliestRead(0), timing_.tRCD);
  EXPECT_THROW(bank_.Read(timing_.tRCD - 1), FatalError);
  const Tick data_end = bank_.Read(timing_.tRCD);
  EXPECT_EQ(data_end, timing_.tRCD + timing_.tCL + timing_.tBL);
}

TEST_F(BankTest, BackToBackReadsHonorTccd) {
  bank_.Activate(PhysicalRow{1}, 0);
  bank_.Read(timing_.tRCD);
  EXPECT_EQ(bank_.EarliestRead(0), timing_.tRCD + timing_.tCCD_L);
}

TEST_F(BankTest, ReadDelaysPrechargeByTrtp) {
  bank_.Activate(PhysicalRow{1}, 0);
  const Tick read_at = timing_.tRAS;  // read late in the open window
  bank_.Read(read_at);
  EXPECT_EQ(bank_.EarliestPrecharge(0), read_at + timing_.tRTP);
}

TEST_F(BankTest, WriteRecoveryDelaysPrecharge) {
  bank_.Activate(PhysicalRow{1}, 0);
  const Tick data_end = bank_.Write(timing_.tRCD);
  EXPECT_EQ(data_end, timing_.tRCD + timing_.tCWL + timing_.tBL);
  EXPECT_EQ(bank_.EarliestPrecharge(0), data_end + timing_.tWR);
}

TEST_F(BankTest, BackToBackWritesHonorTccdLWr) {
  bank_.Activate(PhysicalRow{1}, 0);
  bank_.Write(timing_.tRCD);
  EXPECT_EQ(bank_.EarliestWrite(0), timing_.tRCD + timing_.tCCD_L_WR);
}

TEST_F(BankTest, ReadOrWriteOnIdleBankThrows) {
  EXPECT_THROW(bank_.Read(0), FatalError);
  EXPECT_THROW(bank_.Write(0), FatalError);
}

TEST_F(BankTest, SyncAfterBulkSetsTimestamps) {
  bank_.SyncAfterBulk(1000, 1000 + timing_.tRAS);
  EXPECT_EQ(bank_.EarliestActivate(0),
            1000 + timing_.tRAS + timing_.tRP);
}

TEST_F(BankTest, SyncAfterBulkRequiresIdle) {
  bank_.Activate(PhysicalRow{1}, 0);
  EXPECT_THROW(bank_.SyncAfterBulk(0, timing_.tRAS), FatalError);
}

}  // namespace
}  // namespace vrddram::dram
