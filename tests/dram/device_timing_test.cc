// Device-level inter-command timing: tRRD/tFAW across banks, burst
// pacing, and the residency of command scheduling invariants.
#include <gtest/gtest.h>

#include "common/error.h"
#include "dram/device.h"

namespace vrddram::dram {
namespace {

DeviceConfig MultiBankConfig() {
  DeviceConfig config;
  config.org.num_banks = 8;
  config.org.rows_per_bank = 64;
  config.org.row_bytes = 128;
  config.timing = MakeDdr4_3200();
  config.seed = 21;
  config.has_trr = false;
  return config;
}

TEST(DeviceTimingTest, ActToActAcrossBanksHonorsTrrd) {
  Device device(MultiBankConfig());
  device.Activate(0, 1);
  const Tick first = device.Now();
  device.Activate(1, 1);
  const Tick second = device.Now();
  EXPECT_GE(second - first, device.timing().tRRD_S);
}

TEST(DeviceTimingTest, FourActivateWindowEnforced) {
  Device device(MultiBankConfig());
  std::vector<Tick> act_times;
  for (BankId bank = 0; bank < 5; ++bank) {
    device.Activate(bank, 1);
    act_times.push_back(device.Now());
  }
  // The fifth ACT must wait until tFAW after the first.
  EXPECT_GE(act_times[4] - act_times[0], device.timing().tFAW);
}

TEST(DeviceTimingTest, IndependentBanksOverlapRowCycles) {
  Device device(MultiBankConfig());
  // Open two banks without waiting for either to close: legal.
  device.Activate(0, 1);
  device.Activate(1, 2);
  EXPECT_EQ(device.StateOf(0), BankState::kActive);
  EXPECT_EQ(device.StateOf(1), BankState::kActive);
  device.Precharge(0);
  device.Precharge(1);
  EXPECT_EQ(device.StateOf(0), BankState::kIdle);
}

TEST(DeviceTimingTest, WriteBurstTrainPacedByTccdLWr) {
  Device device(MultiBankConfig());
  device.Activate(0, 3);
  const Tick before = device.Now();
  device.WriteRow(0, 3, 0x11);  // two 64 B bursts
  const Tick after = device.Now();
  // At least one tCCD_L_WR between the two bursts plus the data time.
  EXPECT_GE(after - before,
            device.timing().tCCD_L_WR + device.timing().tCWL +
                device.timing().tBL);
  device.Precharge(0);
}

TEST(DeviceTimingTest, WriteValidation) {
  Device device(MultiBankConfig());
  device.Activate(0, 3);
  const std::vector<std::uint8_t> bytes(16, 0xEE);
  // Wrong row open.
  EXPECT_THROW(device.Write(0, 4, 0, bytes), FatalError);
  // Beyond row end.
  EXPECT_THROW(device.Write(0, 3, 120, bytes), FatalError);
  // Empty write.
  EXPECT_THROW(device.Write(0, 3, 0, {}), FatalError);
  device.Precharge(0);
}

TEST(DeviceTimingTest, HammerSingleSidedAdvancesTimeAndCounts) {
  Device device(MultiBankConfig());
  const Tick t0 = device.Now();
  device.HammerSingleSided(0, 5, 100, device.timing().tRAS);
  EXPECT_EQ(device.counts().act, 100u);
  EXPECT_EQ(device.counts().pre, 100u);
  EXPECT_EQ(device.Now() - t0,
            100 * (device.timing().tRAS + device.timing().tRP));
}

TEST(DeviceTimingTest, BulkHammerThenCommandsRespectTiming) {
  Device device(MultiBankConfig());
  device.HammerDoubleSided(0, 5, 10, device.timing().tRAS);
  const Tick end_of_hammer = device.Now();
  // The next ACT to the same bank must respect tRP after the last PRE.
  device.Activate(0, 5);
  EXPECT_GE(device.Now(), end_of_hammer);
  device.Precharge(0);
}

TEST(DeviceTimingTest, RowPressHold) {
  Device device(MultiBankConfig());
  device.Activate(0, 5);
  device.Sleep(device.timing().tREFI);
  const Tick opened = device.Now();
  device.Precharge(0);
  EXPECT_GE(device.Now(), opened);
}

}  // namespace
}  // namespace vrddram::dram
