#include "dram/retention.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace vrddram::dram {
namespace {

class RetentionTest : public ::testing::Test {
 protected:
  RetentionTest()
      : params_(MakeParams()),
        model_(/*seed=*/77, params_, /*row_bytes=*/1024),
        encoding_(/*seed=*/5, /*anti_fraction=*/0.5) {}

  static RetentionParams MakeParams() {
    RetentionParams p = RetentionParams::MakeDefault();
    // Make weak cells common so tests find them quickly.
    p.weak_cells_per_row = 2.0;
    return p;
  }

  /// First row (searching upward) with at least one weak cell.
  PhysicalRow FindWeakRow() const {
    for (RowAddr r = 0; r < 512; ++r) {
      if (!model_.WeakCellsOf(0, PhysicalRow{r}).empty()) {
        return PhysicalRow{r};
      }
    }
    ADD_FAILURE() << "no weak row found";
    return PhysicalRow{0};
  }

  RetentionParams params_;
  RetentionModel model_;
  CellEncodingLayout encoding_;
};

TEST_F(RetentionTest, WeakCellsAreDeterministic) {
  const auto a = model_.WeakCellsOf(0, PhysicalRow{7});
  const auto b = model_.WeakCellsOf(0, PhysicalRow{7});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bit_index, b[i].bit_index);
    EXPECT_EQ(a[i].retention_at_ref, b[i].retention_at_ref);
  }
}

TEST_F(RetentionTest, DifferentRowsDifferentCells) {
  // Over many rows, the weak-cell populations must differ.
  std::size_t distinct = 0;
  auto first = model_.WeakCellsOf(0, PhysicalRow{0});
  for (RowAddr r = 1; r < 64; ++r) {
    const auto cells = model_.WeakCellsOf(0, PhysicalRow{r});
    if (cells.size() != first.size()) {
      ++distinct;
    }
  }
  EXPECT_GT(distinct, 0u);
}

TEST_F(RetentionTest, NoDecayWithinRefreshWindow) {
  const PhysicalRow row = FindWeakRow();
  const std::vector<std::uint8_t> data(1024, 0xFF);
  // 64 ms is guaranteed retention; weak cells retain for ~seconds.
  const auto flips = model_.DecayedBits(0, row, data, encoding_,
                                        64 * units::kMillisecond, 50.0);
  EXPECT_TRUE(flips.empty());
}

TEST_F(RetentionTest, DecayAfterLongPause) {
  const PhysicalRow row = FindWeakRow();
  // Data charged regardless of encoding: decay must eventually occur.
  const std::uint8_t fill =
      encoding_.RowEncoding(row) == CellEncoding::kAntiCell ? 0x00 : 0xFF;
  const std::vector<std::uint8_t> data(1024, fill);
  const auto flips = model_.DecayedBits(
      0, row, data, encoding_, 3600 * units::kSecond, 50.0);
  EXPECT_FALSE(flips.empty());
}

TEST_F(RetentionTest, OnlyChargedCellsDecay) {
  const PhysicalRow row = FindWeakRow();
  // Discharged data: anti rows discharged at 0xFF, true rows at 0x00.
  const std::uint8_t fill =
      encoding_.RowEncoding(row) == CellEncoding::kAntiCell ? 0xFF : 0x00;
  const std::vector<std::uint8_t> data(1024, fill);
  const auto flips = model_.DecayedBits(
      0, row, data, encoding_, 3600 * units::kSecond, 50.0);
  EXPECT_TRUE(flips.empty());
}

TEST_F(RetentionTest, HigherTemperatureDecaysEarlier) {
  const PhysicalRow row = FindWeakRow();
  const auto cells = model_.WeakCellsOf(0, row);
  ASSERT_FALSE(cells.empty());
  const std::uint8_t fill =
      encoding_.RowEncoding(row) == CellEncoding::kAntiCell ? 0x00 : 0xFF;
  const std::vector<std::uint8_t> data(1024, fill);

  // Pick a pause just below the weakest cell's 50 degC retention: no
  // decay at 50 degC, decay at 80 degC (retention halves per 10 degC).
  Tick weakest = cells.front().retention_at_ref;
  for (const auto& cell : cells) {
    weakest = std::min(weakest, cell.retention_at_ref);
  }
  const Tick pause = weakest - 1;
  EXPECT_TRUE(
      model_.DecayedBits(0, row, data, encoding_, pause, 50.0).empty());
  EXPECT_FALSE(
      model_.DecayedBits(0, row, data, encoding_, pause, 80.0).empty());
}

TEST_F(RetentionTest, ZeroElapsedNeverDecays) {
  const PhysicalRow row = FindWeakRow();
  const std::vector<std::uint8_t> data(1024, 0xFF);
  EXPECT_TRUE(model_.DecayedBits(0, row, data, encoding_, 0, 95.0).empty());
}

TEST(CellEncodingTest, RowGranularityAndDeterminism) {
  const CellEncodingLayout layout(/*seed=*/9, /*anti_fraction=*/0.4);
  std::size_t anti = 0;
  for (RowAddr r = 0; r < 1000; ++r) {
    const CellEncoding e = layout.RowEncoding(PhysicalRow{r});
    EXPECT_EQ(e, layout.RowEncoding(PhysicalRow{r}));
    if (e == CellEncoding::kAntiCell) {
      ++anti;
    }
  }
  // ~40% anti-cell rows.
  EXPECT_NEAR(static_cast<double>(anti) / 1000.0, 0.4, 0.06);
}

TEST(CellEncodingTest, ChargeSemantics) {
  const CellEncodingLayout layout(/*seed=*/10, /*anti_fraction=*/0.5);
  // Find one row of each encoding.
  PhysicalRow true_row{0};
  PhysicalRow anti_row{0};
  bool found_true = false;
  bool found_anti = false;
  for (RowAddr r = 0; r < 100 && !(found_true && found_anti); ++r) {
    if (layout.RowEncoding(PhysicalRow{r}) == CellEncoding::kTrueCell) {
      true_row = PhysicalRow{r};
      found_true = true;
    } else {
      anti_row = PhysicalRow{r};
      found_anti = true;
    }
  }
  ASSERT_TRUE(found_true && found_anti);
  EXPECT_TRUE(layout.IsCharged(true_row, true));
  EXPECT_FALSE(layout.IsCharged(true_row, false));
  EXPECT_TRUE(layout.IsCharged(anti_row, false));
  EXPECT_FALSE(layout.IsCharged(anti_row, true));
  EXPECT_FALSE(layout.DischargedValue(true_row));
  EXPECT_TRUE(layout.DischargedValue(anti_row));
}

}  // namespace
}  // namespace vrddram::dram
