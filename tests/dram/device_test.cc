#include "dram/device.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.h"

namespace vrddram::dram {
namespace {

/// Records engine interactions and injects scripted flips.
class FakeModel final : public ReadDisturbanceModel {
 public:
  struct ActRecord {
    BankId bank;
    PhysicalRow row;
    std::uint64_t count;
    Tick t_on;
  };

  void OnActivations(BankId bank, PhysicalRow row, std::uint64_t count,
                     Tick t_on, Tick, Celsius,
                     std::span<const std::uint8_t>) override {
    activations.push_back(ActRecord{bank, row, count, t_on});
  }
  void OnRestore(BankId bank, PhysicalRow row, Tick) override {
    restores.push_back({bank, row, 1, 0});
  }
  void Evaluate(const VictimContext& ctx,
                std::vector<BitFlip>& out) override {
    ++evaluations;
    out.clear();
    if (flip_next && ctx.row == flip_row) {
      flip_next = false;
      out.push_back(pending_flip);
    }
  }

  std::vector<ActRecord> activations;
  std::vector<ActRecord> restores;
  int evaluations = 0;
  bool flip_next = false;
  PhysicalRow flip_row{0};
  BitFlip pending_flip{0, 0};
};

DeviceConfig SmallConfig() {
  DeviceConfig config;
  config.name = "TEST";
  config.org.density_gbit = 1;
  config.org.dq_bits = 8;
  config.org.chips_per_rank = 8;
  config.org.num_banks = 2;
  config.org.rows_per_bank = 64;
  config.org.row_bytes = 128;  // two 64 B bursts
  config.timing = MakeDdr4_3200();
  config.row_mapping = RowMappingScheme::kDirect;
  config.seed = 99;
  config.has_trr = false;
  return config;
}

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest() {
    auto model = std::make_unique<FakeModel>();
    model_ = model.get();
    device_ = std::make_unique<Device>(SmallConfig(), std::move(model));
  }

  FakeModel* model_;
  std::unique_ptr<Device> device_;
};

TEST_F(DeviceTest, WriteReadRoundTrip) {
  device_->Activate(0, 5);
  device_->WriteRow(0, 5, 0xAB);
  const std::vector<std::uint8_t> data = device_->ReadRow(0, 5);
  device_->Precharge(0);
  ASSERT_EQ(data.size(), 128u);
  for (const std::uint8_t byte : data) {
    EXPECT_EQ(byte, 0xAB);
  }
}

TEST_F(DeviceTest, PartialWrite) {
  device_->Activate(0, 5);
  device_->WriteRow(0, 5, 0x00);
  const std::vector<std::uint8_t> bytes = {1, 2, 3};
  device_->Write(0, 5, /*col=*/10, bytes);
  const std::vector<std::uint8_t> data = device_->ReadRow(0, 5);
  EXPECT_EQ(data[10], 1);
  EXPECT_EQ(data[12], 3);
  EXPECT_EQ(data[13], 0);
}

TEST_F(DeviceTest, ReadOfClosedRowThrows) {
  EXPECT_THROW(device_->ReadRow(0, 5), FatalError);
  device_->Activate(0, 5);
  EXPECT_THROW(device_->ReadRow(0, 6), FatalError);
}

TEST_F(DeviceTest, UnwrittenRowsHoldDeterministicPowerupData) {
  device_->Activate(0, 7);
  const std::vector<std::uint8_t> first = device_->ReadRow(0, 7);
  device_->Precharge(0);
  auto other = std::make_unique<Device>(SmallConfig(),
                                        std::make_unique<FakeModel>());
  other->Activate(0, 7);
  EXPECT_EQ(other->ReadRow(0, 7), first);
}

TEST_F(DeviceTest, CommandCountsTracked) {
  device_->Activate(0, 1);
  device_->WriteRow(0, 1, 0x00);  // 2 bursts
  device_->ReadRow(0, 1);         // 2 bursts
  device_->Precharge(0);
  EXPECT_EQ(device_->counts().act, 1u);
  EXPECT_EQ(device_->counts().wr, 2u);
  EXPECT_EQ(device_->counts().rd, 2u);
  EXPECT_EQ(device_->counts().pre, 1u);
}

TEST_F(DeviceTest, TimeAdvancesMonotonically) {
  const Tick t0 = device_->Now();
  device_->Activate(0, 1);
  const Tick t1 = device_->Now();
  device_->WriteRow(0, 1, 0xFF);
  const Tick t2 = device_->Now();
  device_->Precharge(0);
  const Tick t3 = device_->Now();
  EXPECT_GE(t1, t0);
  EXPECT_GT(t2, t1);
  EXPECT_GT(t3, t2);
  // PRE waits at least tRAS after ACT.
  EXPECT_GE(t3 - t1, device_->timing().tRAS);
}

TEST_F(DeviceTest, SleepAdvancesTime) {
  const Tick t0 = device_->Now();
  device_->Sleep(12345);
  EXPECT_EQ(device_->Now(), t0 + 12345);
  EXPECT_THROW(device_->Sleep(-1), FatalError);
}

TEST_F(DeviceTest, PrechargeReportsAggressionToModel) {
  device_->Activate(0, 5);
  device_->Sleep(device_->timing().tREFI);  // RowPress-style long open
  device_->Precharge(0);
  ASSERT_EQ(model_->activations.size(), 1u);
  EXPECT_EQ(model_->activations[0].row.value, 5u);
  EXPECT_EQ(model_->activations[0].count, 1u);
  EXPECT_GE(model_->activations[0].t_on, device_->timing().tREFI);
}

TEST_F(DeviceTest, ActivateMaterializesPendingFlips) {
  device_->Activate(0, 5);
  device_->WriteRow(0, 5, 0x00);
  device_->Precharge(0);
  // Script a flip for the next evaluation of row 5.
  model_->flip_next = true;
  model_->flip_row = PhysicalRow{5};
  model_->pending_flip = BitFlip{3, 2};
  device_->Activate(0, 5);
  const std::vector<std::uint8_t> data = device_->ReadRow(0, 5);
  device_->Precharge(0);
  EXPECT_EQ(data[3], 0x04);  // bit 2 flipped
}

TEST_F(DeviceTest, HammerDoubleSidedFeedsBothAggressors) {
  device_->HammerDoubleSided(0, 8, 1000, device_->timing().tRAS);
  ASSERT_EQ(model_->activations.size(), 2u);
  EXPECT_EQ(model_->activations[0].row.value, 7u);
  EXPECT_EQ(model_->activations[1].row.value, 9u);
  EXPECT_EQ(model_->activations[0].count, 1000u);
  EXPECT_EQ(device_->counts().act, 2000u);
  EXPECT_EQ(device_->counts().pre, 2000u);
}

TEST_F(DeviceTest, HammerAdvancesTimeByCycleCount) {
  const Tick t0 = device_->Now();
  const Tick t_on = device_->timing().tRAS;
  device_->HammerDoubleSided(0, 8, 500, t_on);
  const Tick expected =
      static_cast<Tick>(2 * 500) * (t_on + device_->timing().tRP);
  EXPECT_EQ(device_->Now() - t0, expected);
}

TEST_F(DeviceTest, HammerRejectsEdgeVictims) {
  EXPECT_THROW(
      device_->HammerDoubleSided(0, 0, 10, device_->timing().tRAS),
      FatalError);
  EXPECT_THROW(
      device_->HammerDoubleSided(0, 63, 10, device_->timing().tRAS),
      FatalError);
}

TEST_F(DeviceTest, HammerRejectsIllegalTOn) {
  EXPECT_THROW(
      device_->HammerDoubleSided(0, 8, 10, device_->timing().tRAS - 1),
      FatalError);
  EXPECT_THROW(
      device_->HammerDoubleSided(0, 8, 10,
                                 device_->timing().MaxRowOpenTime() + 1),
      FatalError);
}

TEST_F(DeviceTest, BulkInitMatchesCommandPath) {
  // Same data, same elapsed time, same command counts as the explicit
  // ACT + write train + PRE sequence.
  auto exact = std::make_unique<Device>(SmallConfig(),
                                        std::make_unique<FakeModel>());
  exact->Activate(0, 3);
  exact->WriteRow(0, 3, 0x5A);
  exact->Precharge(0);

  device_->BulkInitializeRow(0, 3, 0x5A);

  EXPECT_EQ(device_->Now(), exact->Now());
  EXPECT_EQ(device_->counts().act, exact->counts().act);
  EXPECT_EQ(device_->counts().wr, exact->counts().wr);
  EXPECT_EQ(device_->counts().pre, exact->counts().pre);
  EXPECT_EQ(device_->PeekRowPhysical(0, PhysicalRow{3}),
            exact->PeekRowPhysical(0, PhysicalRow{3}));
}

TEST_F(DeviceTest, RefreshRequiresIdleBanks) {
  device_->Activate(0, 1);
  EXPECT_THROW(device_->Refresh(), FatalError);
}

TEST_F(DeviceTest, RefreshRestoresTrackedRows) {
  device_->Activate(0, 0);
  device_->WriteRow(0, 0, 0xFF);
  device_->Precharge(0);
  const std::size_t restores_before = model_->restores.size();
  // One full refresh-window worth of REF commands covers every row.
  const auto refs = static_cast<std::uint64_t>(
      device_->timing().tREFW / device_->timing().tREFI);
  for (std::uint64_t i = 0; i < refs; ++i) {
    device_->Refresh();
  }
  EXPECT_GT(model_->restores.size(), restores_before);
  EXPECT_EQ(device_->counts().ref, refs);
}

TEST_F(DeviceTest, OnDieEccRequiresHardware) {
  EXPECT_THROW(device_->SetOnDieEccEnabled(true), FatalError);
  EXPECT_FALSE(device_->OnDieEccEnabled());
}

TEST(DeviceEccTest, OnDieEccHidesSingleBitFlips) {
  DeviceConfig config = SmallConfig();
  config.has_on_die_ecc = true;
  auto model = std::make_unique<FakeModel>();
  FakeModel* fake = model.get();
  Device device(config, std::move(model));
  EXPECT_TRUE(device.OnDieEccEnabled());  // enabled at power-up

  device.Activate(0, 5);
  device.WriteRow(0, 5, 0x00);
  device.Precharge(0);
  fake->flip_next = true;
  fake->flip_row = PhysicalRow{5};
  fake->pending_flip = BitFlip{0, 0};
  device.Activate(0, 5);
  // ECC on: the single flip is corrected on read.
  std::vector<std::uint8_t> data = device.ReadRow(0, 5);
  EXPECT_EQ(data[0], 0x00);
  // §3.1 methodology: disabling ECC via the mode register exposes it.
  device.SetOnDieEccEnabled(false);
  data = device.ReadRow(0, 5);
  EXPECT_EQ(data[0], 0x01);
  device.Precharge(0);
}

TEST(DeviceTrrTest, TrrProtectsUnderRefresh) {
  DeviceConfig config = SmallConfig();
  config.has_trr = true;
  auto model = std::make_unique<FakeModel>();
  FakeModel* fake = model.get();
  Device device(config, std::move(model));

  // Hammer row 8's neighbours repeatedly, then REF: TRR must refresh
  // the tracked aggressor's neighbourhood - in particular the victim
  // row 8 itself, which plain refresh striping (row 0 first) would not
  // touch yet.
  device.HammerDoubleSided(0, 8, 100, device.timing().tRAS);
  device.Refresh();
  bool victim_restored = false;
  for (const auto& record : fake->restores) {
    if (record.bank == 0 && record.row.value == 8) {
      victim_restored = true;
    }
  }
  EXPECT_TRUE(victim_restored);
}

TEST(DeviceRetentionTest, LongUnrefreshedPauseCorruptsData) {
  DeviceConfig config = SmallConfig();
  config.retention.weak_cells_per_row = 3.0;  // make weak cells common
  Device device(config, nullptr);

  // Find a row that decays: write charged data everywhere, wait far
  // beyond retention, read back.
  bool corrupted = false;
  for (RowAddr row = 0; row < 32 && !corrupted; ++row) {
    for (const std::uint8_t fill : {0x00, 0xFF}) {
      device.Activate(0, row);
      device.WriteRow(0, row, fill);
      device.Precharge(0);
      device.Sleep(600 * units::kSecond);
      device.Activate(0, row);
      const std::vector<std::uint8_t> data = device.ReadRow(0, row);
      device.Precharge(0);
      for (const std::uint8_t byte : data) {
        if (byte != fill) {
          corrupted = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(corrupted)
      << "retention decay must corrupt unrefreshed rows";
}

}  // namespace
}  // namespace vrddram::dram

namespace vrddram::dram {
namespace {

TEST(DeviceEccTest, MultiBitWordEscapesOnDieEcc) {
  DeviceConfig config = SmallConfig();
  config.has_on_die_ecc = true;
  auto model = std::make_unique<FakeModel>();
  FakeModel* fake = model.get();
  Device device(config, std::move(model));

  device.Activate(0, 5);
  device.WriteRow(0, 5, 0x00);
  device.Precharge(0);
  // Two flips in the same 64-bit word: beyond SEC.
  fake->flip_next = true;
  fake->flip_row = PhysicalRow{5};
  fake->pending_flip = BitFlip{0, 0};
  device.Activate(0, 5);
  device.Precharge(0);
  fake->flip_next = true;
  fake->pending_flip = BitFlip{1, 3};
  device.Activate(0, 5);
  const std::vector<std::uint8_t> data = device.ReadRow(0, 5);
  device.Precharge(0);
  EXPECT_EQ(data[0], 0x01);
  EXPECT_EQ(data[1], 0x08);
}

}  // namespace
}  // namespace vrddram::dram
