#include "dram/timing.h"

#include <gtest/gtest.h>

namespace vrddram::dram {
namespace {

using units::FromNs;
using units::FromUs;

// Table 6 of the paper's Appendix A (JEDEC DDR5 @ 8800 MT/s).
TEST(TimingTest, Ddr5Table6Values) {
  const TimingParams t = MakeDdr5_8800();
  EXPECT_EQ(t.tRRD_S, FromNs(1.816));
  EXPECT_EQ(t.tCCD_S, FromNs(1.816));
  EXPECT_EQ(t.tCCD_L, FromNs(5.0));
  EXPECT_EQ(t.tCCD_L_WR, FromNs(20.0));
  EXPECT_EQ(t.tRCD, FromNs(14.090));
  EXPECT_EQ(t.tRP, FromNs(14.090));
  EXPECT_EQ(t.tRAS, FromNs(32.0));
  EXPECT_EQ(t.tRTP, FromNs(7.5));
  EXPECT_EQ(t.tWR, FromNs(30.0));
}

TEST(TimingTest, Ddr4Basics) {
  const TimingParams t = MakeDdr4_3200();
  EXPECT_EQ(t.standard, Standard::kDdr4);
  EXPECT_EQ(t.tREFI, FromUs(7.8));
  EXPECT_EQ(t.tREFW, FromUs(64000.0));
  EXPECT_EQ(t.tRC, t.tRAS + t.tRP);
  // 8192 refresh commands cover the refresh window.
  EXPECT_EQ(t.tREFW / t.tREFI, 8205);  // 64 ms / 7.8 us
}

TEST(TimingTest, MaxRowOpenTimeIsNineTrefi) {
  const TimingParams t = MakeDdr4_3200();
  EXPECT_EQ(t.MaxRowOpenTime(), 9 * t.tREFI);
}

TEST(TimingTest, StandardsDiffer) {
  EXPECT_EQ(MakeHbm2().standard, Standard::kHbm2);
  EXPECT_EQ(MakeDdr5_8800().standard, Standard::kDdr5);
  EXPECT_EQ(ToString(Standard::kHbm2), "HBM2");
}

TEST(TimingTest, ActPreEnergyPositiveAndMonotoneInOpenTime) {
  const CurrentParams c = MakeDdr5Currents();
  const TimingParams t = MakeDdr5_8800();
  const double short_open = c.ActPreEnergy(t.tRC, t.tRC);
  const double long_open = c.ActPreEnergy(FromUs(7.8), t.tRC);
  EXPECT_GT(short_open, 0.0);
  EXPECT_GT(long_open, short_open);
}

TEST(TimingTest, BurstEnergy) {
  const CurrentParams c = MakeDdr5Currents();
  EXPECT_GT(c.BurstEnergy(FromNs(2.0), /*is_write=*/false), 0.0);
  EXPECT_GT(c.BurstEnergy(FromNs(2.0), /*is_write=*/true), 0.0);
}

TEST(TimingTest, BackgroundEnergyScalesWithTime) {
  const CurrentParams c = MakeDdr5Currents();
  const double one = c.BackgroundEnergy(units::kSecond, false);
  const double two = c.BackgroundEnergy(2 * units::kSecond, false);
  EXPECT_NEAR(two, 2.0 * one, 1e-12);
  EXPECT_GT(c.BackgroundEnergy(units::kSecond, true), one);
}

}  // namespace
}  // namespace vrddram::dram
