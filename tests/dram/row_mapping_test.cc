#include "dram/row_mapping.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"

namespace vrddram::dram {
namespace {

class RowMappingSchemeTest
    : public ::testing::TestWithParam<RowMappingScheme> {};

TEST_P(RowMappingSchemeTest, RoundTripsForAllRowsInAGroup) {
  const RowMapper mapper(GetParam(), 1u << 10);
  for (RowAddr row = 0; row < (1u << 10); ++row) {
    const PhysicalRow phys = mapper.ToPhysical(row);
    EXPECT_EQ(mapper.ToLogical(phys), row);
  }
}

TEST_P(RowMappingSchemeTest, IsBijective) {
  const RowMapper mapper(GetParam(), 256);
  std::set<RowAddr> images;
  for (RowAddr row = 0; row < 256; ++row) {
    images.insert(mapper.ToPhysical(row).value);
  }
  EXPECT_EQ(images.size(), 256u);
}

TEST_P(RowMappingSchemeTest, StaysWithinSixteenRowGroups) {
  const RowMapper mapper(GetParam(), 1u << 12);
  for (RowAddr row = 0; row < (1u << 12); ++row) {
    const PhysicalRow phys = mapper.ToPhysical(row);
    EXPECT_EQ(row / 16, phys.value / 16)
        << "remapping must not cross 16-row groups";
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, RowMappingSchemeTest,
                         ::testing::Values(RowMappingScheme::kDirect,
                                           RowMappingScheme::kXorMidBits,
                                           RowMappingScheme::kPairSwap16));

TEST(RowMappingTest, DirectIsIdentity) {
  const RowMapper mapper(RowMappingScheme::kDirect, 64);
  for (RowAddr row = 0; row < 64; ++row) {
    EXPECT_EQ(mapper.ToPhysical(row).value, row);
  }
}

TEST(RowMappingTest, XorMidBitsScramblesUpperHalfOfGroups) {
  const RowMapper mapper(RowMappingScheme::kXorMidBits, 64);
  // Rows 0..3 (bit2 = 0) unchanged; rows 4..7 swizzled.
  EXPECT_EQ(mapper.ToPhysical(0).value, 0u);
  EXPECT_EQ(mapper.ToPhysical(4).value, 7u);
  EXPECT_EQ(mapper.ToPhysical(5).value, 6u);
}

TEST(RowMappingTest, PairSwap16SwapsUpperPairs) {
  const RowMapper mapper(RowMappingScheme::kPairSwap16, 64);
  EXPECT_EQ(mapper.ToPhysical(3).value, 3u);
  EXPECT_EQ(mapper.ToPhysical(8).value, 9u);
  EXPECT_EQ(mapper.ToPhysical(9).value, 8u);
  EXPECT_EQ(mapper.ToPhysical(14).value, 15u);
}

TEST(RowMappingTest, InvalidConstruction) {
  EXPECT_THROW(RowMapper(RowMappingScheme::kDirect, 0), FatalError);
  EXPECT_THROW(RowMapper(RowMappingScheme::kDirect, 100), FatalError);
  EXPECT_THROW(RowMapper(RowMappingScheme::kDirect, 8), FatalError);
}

TEST(RowMappingTest, OutOfRangeAddressesThrow) {
  const RowMapper mapper(RowMappingScheme::kDirect, 64);
  EXPECT_THROW(mapper.ToPhysical(64), FatalError);
  EXPECT_THROW(mapper.ToLogical(PhysicalRow{64}), FatalError);
}

}  // namespace
}  // namespace vrddram::dram
