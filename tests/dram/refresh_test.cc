// Refresh bookkeeping: stripe coverage over the refresh window and the
// interaction with retention.
#include <gtest/gtest.h>

#include "dram/device.h"

namespace vrddram::dram {
namespace {

DeviceConfig RefreshConfig() {
  DeviceConfig config;
  config.org.num_banks = 1;
  config.org.rows_per_bank = 8192;
  config.org.row_bytes = 128;
  config.seed = 13;
  config.has_trr = false;
  // Dense weak-retention cells so unrefreshed rows visibly decay.
  config.retention.weak_cells_per_row = 3.0;
  return config;
}

TEST(RefreshTest, FullWindowOfRefsCoversEveryRow) {
  Device device(RefreshConfig());
  // Touch a row late in the bank so its stripe arrives near the end.
  const RowAddr row = 8000;
  device.Activate(0, row);
  device.WriteRow(0, row, 0xFF);
  device.Precharge(0);

  const auto refs = static_cast<std::uint64_t>(
      device.timing().tREFW / device.timing().tREFI);
  Tick max_since = 0;
  for (std::uint64_t i = 0; i < refs; ++i) {
    device.Sleep(device.timing().tREFI - device.timing().tRFC);
    device.Refresh();
    max_since = std::max(max_since,
                         device.SinceRestore(0, PhysicalRow{row}));
  }
  // The row was restored within roughly one refresh window.
  EXPECT_LE(max_since, device.timing().tREFW +
                           64 * device.timing().tREFI);
  EXPECT_LT(device.SinceRestore(0, PhysicalRow{row}),
            device.timing().tREFW);
}

TEST(RefreshTest, RefreshedDataSurvivesBeyondRetention) {
  Device device(RefreshConfig());
  device.SetTemperature(80.0);

  // Find a row that decays when left alone for 100 s.
  RowAddr weak_row = 0;
  for (RowAddr row = 0; row < 64; ++row) {
    for (const std::uint8_t fill : {0x00, 0xFF}) {
      device.Activate(0, row);
      device.WriteRow(0, row, fill);
      device.Precharge(0);
      device.Sleep(100 * units::kSecond);
      device.Activate(0, row);
      const auto data = device.ReadRow(0, row);
      device.Precharge(0);
      bool corrupted = false;
      for (const std::uint8_t byte : data) {
        corrupted |= (byte != fill);
      }
      if (corrupted) {
        weak_row = row;
      }
    }
    if (weak_row != 0) {
      break;
    }
  }
  ASSERT_NE(weak_row, 0u) << "no retention-weak row found";

  // Same span of time, but with the row re-activated (refreshed)
  // every 50 ms: the data survives.
  Device fresh(RefreshConfig());
  fresh.SetTemperature(80.0);
  fresh.Activate(0, weak_row);
  fresh.WriteRow(0, weak_row, 0xFF);
  fresh.Precharge(0);
  for (int i = 0; i < 2000; ++i) {
    fresh.Sleep(50 * units::kMillisecond);
    fresh.Activate(0, weak_row);  // activation restores the charge
    fresh.Precharge(0);
  }
  fresh.Activate(0, weak_row);
  const auto data = fresh.ReadRow(0, weak_row);
  fresh.Precharge(0);
  for (const std::uint8_t byte : data) {
    EXPECT_EQ(byte, 0xFF);
  }
}

}  // namespace
}  // namespace vrddram::dram
