#include "bender/host.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "vrd/chip_catalog.h"
#include "vrd/trap_engine.h"

namespace vrddram::bender {
namespace {

/// A small device with a deterministic (no-noise, no-trap) fault
/// engine so exact and bulk paths can be compared bit for bit.
struct Rig {
  Rig() {
    vrd::FaultProfile profile;
    profile.median_rdt = 5000.0;
    profile.sigma_rdt = 0.3;
    profile.weak_cells_mean = 6.0;
    profile.t_ras = dram::MakeDdr4_3200().tRAS;
    profile.measurement_noise_sigma = 0.0;
    profile.fast_trap_mean = 0.0;
    profile.rare_trap_prob = 0.0;

    dram::DeviceConfig config;
    config.org.num_banks = 2;
    config.org.rows_per_bank = 128;
    config.org.row_bytes = 256;
    config.seed = 4242;
    config.has_trr = false;
    config.row_mapping = dram::RowMappingScheme::kXorMidBits;
    device = std::make_unique<dram::Device>(
        config, std::make_unique<vrd::TrapFaultEngine>(
                    profile, config.seed, config.org));
  }
  std::unique_ptr<dram::Device> device;
};

TEST(HostTest, InitializeNeighborhoodWritesTable2Bytes) {
  Rig rig;
  TestHost host(*rig.device);
  const dram::RowAddr victim = 20;
  host.InitializeNeighborhood(0, victim, dram::DataPattern::kCheckered0);

  const dram::PhysicalRow phys = rig.device->mapper().ToPhysical(victim);
  auto row_byte = [&](std::int64_t offset) {
    const auto data = rig.device->PeekRowPhysical(
        0, dram::PhysicalRow{
               static_cast<dram::RowAddr>(phys.value + offset)});
    return data[0];
  };
  EXPECT_EQ(row_byte(0), 0x55);   // victim
  EXPECT_EQ(row_byte(-1), 0xAA);  // aggressors
  EXPECT_EQ(row_byte(1), 0xAA);
  for (const std::int64_t d : {-8, -5, -2, 2, 5, 8}) {
    EXPECT_EQ(row_byte(d), 0x55) << "surround row at offset " << d;
  }
}

TEST(HostTest, TestOnceFlipsAtHighCountNotLow) {
  Rig rig;
  TestHost host(*rig.device);
  auto* engine =
      dynamic_cast<vrd::TrapFaultEngine*>(&rig.device->model());
  ASSERT_NE(engine, nullptr);

  // Find a victim with a weak cell and get its deterministic RDT.
  dram::RowAddr victim = 0;
  double rdt = -1.0;
  for (dram::RowAddr row = 1; row < 127; ++row) {
    const dram::PhysicalRow phys = rig.device->mapper().ToPhysical(row);
    if (phys.value == 0 || phys.value >= 127) {
      continue;
    }
    rdt = engine->MinFlipHammerCount(
        0, phys, dram::VictimByte(dram::DataPattern::kCheckered0),
        dram::AggressorByte(dram::DataPattern::kCheckered0),
        rig.device->timing().tRAS, 50.0, rig.device->encoding(), 0);
    if (rdt > 0.0 && rdt < 50000.0) {
      victim = row;
      break;
    }
  }
  ASSERT_GT(rdt, 0.0);

  const auto low = static_cast<std::uint64_t>(rdt * 0.9);
  const auto high = static_cast<std::uint64_t>(rdt * 1.1);
  EXPECT_TRUE(host.TestOnce(0, victim, dram::DataPattern::kCheckered0,
                            low, rig.device->timing().tRAS)
                  .empty());
  EXPECT_FALSE(host.TestOnce(0, victim, dram::DataPattern::kCheckered0,
                             high, rig.device->timing().tRAS)
                   .empty());
}

TEST(HostTest, ExactAndBulkPathsAgree) {
  // Two identical rigs; one tested with individually issued commands,
  // the other through the bulk fast path. The observed flips must be
  // identical (the fault engine is deterministic here).
  Rig exact_rig;
  Rig bulk_rig;
  TestHost exact_host(*exact_rig.device);
  TestHost bulk_host(*bulk_rig.device);
  auto* engine =
      dynamic_cast<vrd::TrapFaultEngine*>(&exact_rig.device->model());

  dram::RowAddr victim = 0;
  double rdt = -1.0;
  for (dram::RowAddr row = 1; row < 127; ++row) {
    const dram::PhysicalRow phys =
        exact_rig.device->mapper().ToPhysical(row);
    if (phys.value == 0 || phys.value >= 127) {
      continue;
    }
    rdt = engine->MinFlipHammerCount(
        0, phys, dram::VictimByte(dram::DataPattern::kCheckered0),
        dram::AggressorByte(dram::DataPattern::kCheckered0),
        exact_rig.device->timing().tRAS, 50.0,
        exact_rig.device->encoding(), 0);
    if (rdt > 0.0 && rdt < 20000.0) {
      victim = row;
      break;
    }
  }
  ASSERT_GT(rdt, 0.0);

  for (const double factor : {0.95, 1.05}) {
    const auto hc = static_cast<std::uint64_t>(rdt * factor);
    const auto exact_flips = exact_host.TestOnceExact(
        0, victim, dram::DataPattern::kCheckered0, hc,
        exact_rig.device->timing().tRAS);
    const auto bulk_flips = bulk_host.TestOnce(
        0, victim, dram::DataPattern::kCheckered0, hc,
        bulk_rig.device->timing().tRAS);
    EXPECT_EQ(exact_flips, bulk_flips) << "at factor " << factor;
  }
  // The two paths must account identical elapsed time.
  EXPECT_EQ(exact_rig.device->Now(), bulk_rig.device->Now());
}

TEST(HostTest, FindPhysicalNeighborsRecoversMapping) {
  Rig rig;
  TestHost host(*rig.device);
  // Pick a victim whose both physical neighbours have weak cells, so
  // the reverse-engineering hammering flips both.
  auto* engine =
      dynamic_cast<vrd::TrapFaultEngine*>(&rig.device->model());
  dram::RowAddr probe = 0;
  for (dram::RowAddr row = 2; row < 120; ++row) {
    const dram::PhysicalRow phys = rig.device->mapper().ToPhysical(row);
    if (phys.value < 2 || phys.value > 125) {
      continue;
    }
    const bool lo_weak =
        !engine
             ->RowStateOf(0, dram::PhysicalRow{phys.value - 1})
             .cells.empty();
    const bool hi_weak =
        !engine
             ->RowStateOf(0, dram::PhysicalRow{phys.value + 1})
             .cells.empty();
    if (lo_weak && hi_weak) {
      probe = row;
      break;
    }
  }
  ASSERT_GT(probe, 0u);

  const auto neighbours = host.FindPhysicalNeighbors(0, probe, 200000);
  const dram::PhysicalRow phys = rig.device->mapper().ToPhysical(probe);
  const dram::RowAddr expected_lo =
      rig.device->mapper().ToLogical(dram::PhysicalRow{phys.value - 1});
  const dram::RowAddr expected_hi =
      rig.device->mapper().ToLogical(dram::PhysicalRow{phys.value + 1});
  EXPECT_TRUE(std::find(neighbours.begin(), neighbours.end(),
                        expected_lo) != neighbours.end());
  EXPECT_TRUE(std::find(neighbours.begin(), neighbours.end(),
                        expected_hi) != neighbours.end());
}

TEST(HostTest, DiscoverRowEncodingMatchesLayout) {
  dram::DeviceConfig config;
  config.org.num_banks = 1;
  config.org.rows_per_bank = 64;
  config.org.row_bytes = 256;
  config.seed = 31;
  config.has_trr = false;
  config.anti_cell_fraction = 0.5;
  config.retention.weak_cells_per_row = 4.0;  // dense weak cells
  dram::Device device(config);
  TestHost host(device);

  int verified = 0;
  for (dram::RowAddr row = 0; row < 64 && verified < 6; ++row) {
    const auto discovered =
        host.DiscoverRowEncoding(0, row, 3600 * units::kSecond);
    if (!discovered) {
      continue;  // row has no retention-weak cell
    }
    const dram::PhysicalRow phys = device.mapper().ToPhysical(row);
    EXPECT_EQ(*discovered, device.encoding().RowEncoding(phys));
    ++verified;
  }
  EXPECT_GT(verified, 0);
}

}  // namespace
}  // namespace vrddram::bender
