#include "bender/test_program.h"

#include <gtest/gtest.h>

#include "bender/host.h"
#include "common/error.h"
#include "dram/device.h"

namespace vrddram::bender {
namespace {

dram::DeviceConfig SmallConfig() {
  dram::DeviceConfig config;
  config.org.num_banks = 2;
  config.org.rows_per_bank = 64;
  config.org.row_bytes = 128;
  config.seed = 11;
  config.has_trr = false;
  return config;
}

TEST(TestProgramTest, ValidationRejectsEmpty) {
  TestProgram program;
  EXPECT_THROW(program.Validate(MakeAlveoU200()), FatalError);
}

TEST(TestProgramTest, ValidationRejectsUnbalancedLoops) {
  TestProgram open_loop;
  open_loop.Loop(3).Act(0, 1);
  EXPECT_THROW(open_loop.Validate(MakeAlveoU200()), FatalError);

  TestProgram stray_end;
  stray_end.Act(0, 1).EndLoop();
  EXPECT_THROW(stray_end.Validate(MakeAlveoU200()), FatalError);
}

TEST(TestProgramTest, ValidationRejectsDeepNesting) {
  TestProgram program;
  for (int i = 0; i < 5; ++i) {
    program.Loop(2);
  }
  program.Act(0, 1);
  for (int i = 0; i < 5; ++i) {
    program.EndLoop();
  }
  EXPECT_THROW(program.Validate(MakeAlveoU200()), FatalError);
}

TEST(TestProgramTest, ValidationRejectsOversizedPrograms) {
  Platform tiny;
  tiny.max_instructions = 4;
  TestProgram program;
  for (int i = 0; i < 5; ++i) {
    program.Act(0, 1);
  }
  EXPECT_THROW(program.Validate(tiny), FatalError);
}

TEST(TestProgramTest, ZeroLoopCountRejectedAtBuild) {
  TestProgram program;
  EXPECT_THROW(program.Loop(0), FatalError);
  EXPECT_THROW(program.Sleep(-5), FatalError);
}

TEST(TestProgramTest, RunnerExecutesStraightLine) {
  dram::Device device(SmallConfig());
  TestProgram program;
  program.Act(0, 3)
      .WriteRow(0, 3, 0x77)
      .ReadRow(0, 3)
      .Pre(0);
  ProgramRunner runner(device);
  const ExecutionResult result = runner.Run(program);
  ASSERT_EQ(result.reads.size(), 1u);
  EXPECT_EQ(result.reads[0].row, 3u);
  for (const std::uint8_t byte : result.reads[0].data) {
    EXPECT_EQ(byte, 0x77);
  }
  EXPECT_GT(result.elapsed, 0);
}

TEST(TestProgramTest, RunnerExecutesLoops) {
  dram::Device device(SmallConfig());
  TestProgram program;
  program.Loop(10)
      .Act(0, 5)
      .Pre(0)
      .EndLoop();
  ProgramRunner runner(device);
  runner.Run(program);
  EXPECT_EQ(device.counts().act, 10u);
  EXPECT_EQ(device.counts().pre, 10u);
}

TEST(TestProgramTest, RunnerExecutesNestedLoops) {
  dram::Device device(SmallConfig());
  TestProgram program;
  program.Loop(3)
      .Loop(4)
      .Act(0, 5)
      .Pre(0)
      .EndLoop()
      .Act(1, 6)
      .Pre(1)
      .EndLoop();
  ProgramRunner runner(device);
  runner.Run(program);
  EXPECT_EQ(device.counts().act, 3u * 4u + 3u);
}

TEST(TestProgramTest, SleepAdvancesDeviceTime) {
  dram::Device device(SmallConfig());
  TestProgram program;
  program.Sleep(5000).Sleep(2500);
  ProgramRunner runner(device);
  const ExecutionResult result = runner.Run(program);
  EXPECT_EQ(result.elapsed, 7500);
}

TEST(TestProgramTest, PlatformPresets) {
  EXPECT_EQ(MakeAlveoU200().name, "alveo-u200");
  EXPECT_EQ(MakeAlveoU50().name, "alveo-u50");
  EXPECT_EQ(MakeXupvvh().name, "xupvvh");
}

}  // namespace
}  // namespace vrddram::bender
