#include "bender/thermal.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vrddram::bender {
namespace {

dram::DeviceConfig SmallConfig() {
  dram::DeviceConfig config;
  config.org.num_banks = 1;
  config.org.rows_per_bank = 64;
  config.org.row_bytes = 128;
  config.seed = 3;
  return config;
}

TEST(ThermalTest, StartsAtAmbient) {
  dram::Device device(SmallConfig());
  TemperatureController rig(device);
  EXPECT_NEAR(rig.Current(), 25.0, 1e-9);
  EXPECT_NEAR(device.temperature(), 25.0, 1e-9);
}

class ThermalSetpointTest : public ::testing::TestWithParam<double> {};

TEST_P(ThermalSetpointTest, SettlesWithinHalfDegree) {
  dram::Device device(SmallConfig());
  TemperatureController rig(device);
  const double target = GetParam();
  const Tick took = rig.SettleTo(target);
  EXPECT_GT(took, 0);
  EXPECT_TRUE(rig.Settled());
  EXPECT_NEAR(rig.Current(), target, 0.5);
  EXPECT_NEAR(device.temperature(), rig.Current(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PaperSetpoints, ThermalSetpointTest,
                         ::testing::Values(50.0, 65.0, 80.0));

TEST(ThermalTest, HoldsTemperatureOverTime) {
  dram::Device device(SmallConfig());
  TemperatureController rig(device);
  rig.SettleTo(65.0);
  // Stay settled for a minute of continued regulation.
  for (int i = 0; i < 60; ++i) {
    rig.Run(units::kSecond);
    EXPECT_NEAR(rig.Current(), 65.0, 0.6);
  }
}

TEST(ThermalTest, AdvancesDeviceTime) {
  dram::Device device(SmallConfig());
  TemperatureController rig(device);
  const Tick t0 = device.Now();
  rig.Run(10 * units::kSecond);
  EXPECT_EQ(device.Now() - t0, 10 * units::kSecond);
}

TEST(ThermalTest, RejectsUnreachableTargets) {
  dram::Device device(SmallConfig());
  TemperatureController rig(device);
  EXPECT_THROW(rig.SetTarget(20.0), FatalError);   // below ambient
  EXPECT_THROW(rig.SetTarget(150.0), FatalError);  // beyond safe range
}

TEST(ThermalTest, RetargetingWorks) {
  dram::Device device(SmallConfig());
  TemperatureController rig(device);
  rig.SettleTo(50.0);
  rig.SettleTo(80.0);
  EXPECT_NEAR(rig.Current(), 80.0, 0.5);
  rig.SettleTo(50.0);  // cooling back down (heater off, losses cool)
  EXPECT_NEAR(rig.Current(), 50.0, 0.5);
}

}  // namespace
}  // namespace vrddram::bender
