#include "bender/attack_patterns.h"

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "bender/host.h"

#include "common/error.h"
#include "vrd/trap_engine.h"

namespace vrddram::bender {
namespace {

struct AttackRig {
  AttackRig() {
    vrd::FaultProfile profile;
    profile.median_rdt = 5000.0;
    profile.weak_cells_mean = 6.0;
    profile.t_ras = dram::MakeDdr4_3200().tRAS;
    profile.measurement_noise_sigma = 0.0;
    profile.fast_trap_mean = 0.0;
    profile.rare_trap_prob = 0.0;
    profile.heavy_trap_prob = 0.0;

    dram::DeviceConfig config;
    config.org.num_banks = 1;
    config.org.rows_per_bank = 128;
    config.org.row_bytes = 256;
    config.seed = 77;
    config.has_trr = false;
    config.row_mapping = dram::RowMappingScheme::kXorMidBits;
    device = std::make_unique<dram::Device>(
        config, std::make_unique<vrd::TrapFaultEngine>(
                    profile, config.seed, config.org));
  }
  std::unique_ptr<dram::Device> device;
};

TEST(AttackPatternsTest, DoubleSidedPlanHasBothNeighbours) {
  AttackRig rig;
  const AttackPlan plan = PlanAttack(
      *rig.device, AttackKind::kDoubleSided, 40, 1000);
  ASSERT_EQ(plan.aggressors.size(), 2u);
  const auto victim = rig.device->mapper().ToPhysical(40);
  std::set<dram::RowAddr> physical;
  for (const dram::RowAddr aggressor : plan.aggressors) {
    physical.insert(
        rig.device->mapper().ToPhysical(aggressor).value);
  }
  EXPECT_TRUE(physical.contains(victim.value - 1));
  EXPECT_TRUE(physical.contains(victim.value + 1));
}

TEST(AttackPatternsTest, ManySidedUsesEveryOtherRow) {
  AttackRig rig;
  const AttackPlan plan = PlanAttack(
      *rig.device, AttackKind::kManySided, 60, 1000, /*sides=*/6);
  ASSERT_EQ(plan.aggressors.size(), 6u);
  const auto victim = rig.device->mapper().ToPhysical(60).value;
  std::set<std::int64_t> offsets;
  for (const dram::RowAddr aggressor : plan.aggressors) {
    offsets.insert(static_cast<std::int64_t>(
                       rig.device->mapper().ToPhysical(aggressor).value) -
                   static_cast<std::int64_t>(victim));
  }
  EXPECT_EQ(offsets, (std::set<std::int64_t>{-5, -3, -1, 1, 3, 5}));
}

TEST(AttackPatternsTest, EdgeVictimsRejected) {
  AttackRig rig;
  const dram::RowAddr edge = rig.device->mapper().ToLogical(
      dram::PhysicalRow{0});
  EXPECT_THROW(
      PlanAttack(*rig.device, AttackKind::kDoubleSided, edge, 100),
      FatalError);
  EXPECT_THROW(PlanAttack(*rig.device, AttackKind::kManySided,
                          rig.device->mapper().ToLogical(
                              dram::PhysicalRow{2}),
                          100, 6),
               FatalError);
}

TEST(AttackPatternsTest, ExecuteDoubleSidedMatchesDeviceFastPath) {
  AttackRig a;
  AttackRig b;
  const AttackPlan plan =
      PlanAttack(*a.device, AttackKind::kDoubleSided, 40, 5000);
  ExecuteAttack(*a.device, 0, plan, a.device->timing().tRAS);
  b.device->HammerDoubleSided(0, 40, 5000, b.device->timing().tRAS);
  EXPECT_EQ(a.device->counts().act, b.device->counts().act);
  EXPECT_EQ(a.device->Now(), b.device->Now());
}

TEST(AttackPatternsTest, SingleSidedFlipsNeedMoreHammers) {
  // A single aggressor delivers only one side's coupling: flipping the
  // victim takes more activations than double-sided at equal counts.
  AttackRig rig;
  auto* engine =
      dynamic_cast<vrd::TrapFaultEngine*>(&rig.device->model());
  // A victim with weak cells.
  dram::RowAddr victim = 0;
  for (dram::RowAddr row = 2; row < 125; ++row) {
    const auto phys = rig.device->mapper().ToPhysical(row);
    if (phys.value < 2 || phys.value > 125) {
      continue;
    }
    if (!engine->RowStateOf(0, phys).cells.empty()) {
      victim = row;
      break;
    }
  }
  ASSERT_GT(victim, 0u);
  const double rdt_double = engine->MinFlipHammerCount(
      0, rig.device->mapper().ToPhysical(victim), 0x55, 0xAA,
      rig.device->timing().tRAS, 50.0, rig.device->encoding(), 0);
  ASSERT_GT(rdt_double, 0.0);

  auto flips_after = [&](AttackKind kind, std::uint64_t hammers) {
    AttackRig fresh;
    // Initialize the victim's data so flips are observable.
    fresh.device->BulkInitializeRow(0, victim, 0x55);
    for (const std::int64_t d : {-1, 1}) {
      const auto phys = fresh.device->mapper().ToPhysical(victim);
      fresh.device->BulkInitializeRow(
          0,
          fresh.device->mapper().ToLogical(dram::PhysicalRow{
              static_cast<dram::RowAddr>(phys.value + d)}),
          0xAA);
    }
    const AttackPlan plan =
        PlanAttack(*fresh.device, kind, victim, hammers);
    ExecuteAttack(*fresh.device, 0, plan,
                  fresh.device->timing().tRAS);
    fresh.device->Activate(0, victim);
    const auto data = fresh.device->ReadRow(0, victim);
    fresh.device->Precharge(0);
    int flips = 0;
    for (const std::uint8_t byte : data) {
      flips += std::popcount(static_cast<unsigned>(byte ^ 0x55));
    }
    return flips;
  };

  const auto hc = static_cast<std::uint64_t>(rdt_double * 1.1);
  EXPECT_GT(flips_after(AttackKind::kDoubleSided, hc), 0);
  EXPECT_EQ(flips_after(AttackKind::kSingleSided, hc), 0);
  // Enough single-sided hammers eventually flip too.
  EXPECT_GT(flips_after(AttackKind::kSingleSided, hc * 4), 0);
}

TEST(AttackPatternsTest, CompiledProgramMatchesBulkExecution) {
  AttackRig exact;
  AttackRig bulk;
  const AttackPlan plan =
      PlanAttack(*exact.device, AttackKind::kSingleSided, 40, 300);

  const TestProgram program = CompileAttack(
      *exact.device, 0, plan, exact.device->timing().tRAS);
  ProgramRunner runner(*exact.device);
  runner.Run(program);

  ExecuteAttack(*bulk.device, 0, plan, bulk.device->timing().tRAS);
  EXPECT_EQ(exact.device->counts().act, bulk.device->counts().act);
  // The bulk path accounts the final precharge's tRP; the command
  // path's clock rests at the final PRE's issue instant.
  EXPECT_EQ(exact.device->Now() + exact.device->timing().tRP,
            bulk.device->Now());
}

TEST(AttackPatternsTest, Names) {
  EXPECT_EQ(ToString(AttackKind::kSingleSided), "single-sided");
  EXPECT_EQ(ToString(AttackKind::kDoubleSided), "double-sided");
  EXPECT_EQ(ToString(AttackKind::kManySided), "many-sided");
}

}  // namespace
}  // namespace vrddram::bender
