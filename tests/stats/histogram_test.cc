#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace vrddram::stats {
namespace {

TEST(HistogramTest, CountUnique) {
  const std::vector<double> xs = {1.0, 2.0, 2.0, 3.0, 3.0, 3.0};
  EXPECT_EQ(CountUnique(xs), 3u);
  const std::vector<std::int64_t> ys = {5, 5, 5};
  EXPECT_EQ(CountUnique(ys), 1u);
}

TEST(HistogramTest, BuildPlacesValuesInBins) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
  const Histogram hist = BuildHistogram(xs, 4);
  ASSERT_EQ(hist.bins.size(), 4u);
  EXPECT_EQ(hist.total, 4u);
  for (const HistogramBin& bin : hist.bins) {
    EXPECT_EQ(bin.count, 1u);
  }
}

TEST(HistogramTest, MaxValueLandsInLastBin) {
  const std::vector<double> xs = {0.0, 10.0};
  const Histogram hist = BuildHistogram(xs, 5);
  EXPECT_EQ(hist.bins.back().count, 1u);
  EXPECT_EQ(hist.bins.front().count, 1u);
}

TEST(HistogramTest, ConstantSeries) {
  const std::vector<double> xs = {5.0, 5.0, 5.0};
  const Histogram hist = BuildUniqueValueHistogram(xs);
  ASSERT_EQ(hist.bins.size(), 1u);
  EXPECT_EQ(hist.bins[0].count, 3u);
}

TEST(HistogramTest, UniqueValueHistogramBinCount) {
  const std::vector<double> xs = {1.0, 2.0, 2.0, 4.0};
  const Histogram hist = BuildUniqueValueHistogram(xs);
  EXPECT_EQ(hist.bins.size(), 3u);  // Fig. 4: bins = unique values
}

TEST(HistogramTest, FractionAndMode) {
  const std::vector<double> xs = {1.0, 1.0, 1.0, 2.0};
  const Histogram hist = BuildUniqueValueHistogram(xs);
  EXPECT_EQ(hist.ModeBin(), 0u);
  EXPECT_DOUBLE_EQ(hist.Fraction(0), 0.75);
}

TEST(HistogramTest, EmptyThrows) {
  const std::vector<double> xs;
  EXPECT_THROW(BuildHistogram(xs, 4), FatalError);
}

TEST(HistogramTest, UnimodalCountsOneMode) {
  // Bell-shaped counts.
  std::vector<double> xs;
  const int counts[] = {1, 3, 8, 15, 22, 15, 8, 3, 1};
  for (int b = 0; b < 9; ++b) {
    for (int i = 0; i < counts[b]; ++i) {
      xs.push_back(static_cast<double>(b));
    }
  }
  const Histogram hist = BuildUniqueValueHistogram(xs);
  EXPECT_EQ(CountModes(hist), 1u);
}

TEST(HistogramTest, BimodalCountsTwoModes) {
  std::vector<double> xs;
  const int counts[] = {2, 18, 30, 18, 2, 0, 0, 2, 14, 24, 14, 2};
  for (int b = 0; b < 12; ++b) {
    for (int i = 0; i < counts[b]; ++i) {
      xs.push_back(static_cast<double>(b));
    }
  }
  const Histogram hist = BuildHistogram(xs, 12);
  EXPECT_EQ(CountModes(hist), 2u);
}

}  // namespace
}  // namespace vrddram::stats
