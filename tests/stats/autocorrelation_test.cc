#include "stats/autocorrelation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace vrddram::stats {
namespace {

TEST(AutocorrelationTest, LagZeroIsOne) {
  const std::vector<double> xs = {1.0, 3.0, 2.0, 5.0, 4.0};
  const std::vector<double> acf = Autocorrelation(xs, 2);
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
}

TEST(AutocorrelationTest, ConstantSeriesIsFullyCorrelated) {
  const std::vector<double> xs(20, 3.0);
  const std::vector<double> acf = Autocorrelation(xs, 5);
  for (const double r : acf) {
    EXPECT_DOUBLE_EQ(r, 1.0);
  }
}

TEST(AutocorrelationTest, WhiteNoiseStaysInBand) {
  Rng rng(11);
  std::vector<double> xs;
  const std::size_t n = 20000;
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(rng.NextGaussian());
  }
  const std::vector<double> acf = Autocorrelation(xs, 40);
  // ~5% of lags may exceed the 95% band; allow slack.
  EXPECT_LT(FractionSignificantLags(acf, n), 0.15);
}

TEST(AutocorrelationTest, PeriodicSignalDetected) {
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(std::sin(2.0 * M_PI * i / 10.0));
  }
  const std::vector<double> acf = Autocorrelation(xs, 20);
  // Strong positive correlation at the period.
  EXPECT_GT(acf[10], 0.9);
  EXPECT_LT(acf[5], -0.9);
  EXPECT_GT(FractionSignificantLags(acf, xs.size()), 0.8);
}

TEST(AutocorrelationTest, AlternatingSeries) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
  }
  const std::vector<double> acf = Autocorrelation(xs, 2);
  EXPECT_NEAR(acf[1], -1.0, 0.05);
  EXPECT_NEAR(acf[2], 1.0, 0.05);
}

TEST(AutocorrelationTest, WhiteNoiseBound) {
  EXPECT_NEAR(WhiteNoiseBound95(10000), 0.0196, 1e-4);
  EXPECT_THROW(WhiteNoiseBound95(0), FatalError);
}

TEST(AutocorrelationTest, InvalidInputsThrow) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(Autocorrelation(one, 0), FatalError);
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_THROW(Autocorrelation(xs, 3), FatalError);
}

}  // namespace
}  // namespace vrddram::stats
