#include "stats/chi_square.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace vrddram::stats {
namespace {

TEST(ChiSquareTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.0), 0.841345, 1e-5);
  EXPECT_NEAR(NormalCdf(-1.96), 0.024998, 1e-5);
  EXPECT_NEAR(NormalCdf(3.0), 0.998650, 1e-5);
}

TEST(ChiSquareTest, RegularizedGammaComplement) {
  for (double a : {0.5, 1.0, 2.5, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-10);
    }
  }
}

TEST(ChiSquareTest, GammaPKnownValues) {
  // P(1, x) = 1 - exp(-x).
  EXPECT_NEAR(RegularizedGammaP(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-10);
  // P(a, 0) = 0, Q(a, 0) = 1.
  EXPECT_DOUBLE_EQ(RegularizedGammaP(3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(3.0, 0.0), 1.0);
}

TEST(ChiSquareTest, PValueKnownQuantiles) {
  // Chi-square with 1 dof: P(X > 3.841) = 0.05.
  EXPECT_NEAR(ChiSquarePValue(3.841, 1), 0.05, 0.001);
  // 10 dof: P(X > 18.307) = 0.05.
  EXPECT_NEAR(ChiSquarePValue(18.307, 10), 0.05, 0.001);
  EXPECT_DOUBLE_EQ(ChiSquarePValue(0.0, 5), 1.0);
}

TEST(ChiSquareTest, NormalSamplesPass) {
  Rng rng(21);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(rng.NextGaussian(100.0, 15.0));
  }
  const GoodnessOfFit fit = ChiSquareNormalTest(xs);
  EXPECT_TRUE(fit.NormalAt(0.01)) << "p=" << fit.p_value;
  EXPECT_NEAR(fit.fitted_mean, 100.0, 1.0);
  EXPECT_NEAR(fit.fitted_stddev, 15.0, 0.5);
}

TEST(ChiSquareTest, UniformSamplesFail) {
  Rng rng(22);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(rng.NextDouble());
  }
  const GoodnessOfFit fit = ChiSquareNormalTest(xs);
  EXPECT_FALSE(fit.NormalAt(0.05));
}

TEST(ChiSquareTest, BimodalSamplesFail) {
  Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(rng.NextGaussian(i % 2 == 0 ? 0.0 : 10.0, 1.0));
  }
  const GoodnessOfFit fit = ChiSquareNormalTest(xs);
  EXPECT_FALSE(fit.NormalAt(0.05));
}

TEST(ChiSquareTest, ConstantSeriesTriviallyPasses) {
  const std::vector<double> xs(100, 5.0);
  const GoodnessOfFit fit = ChiSquareNormalTest(xs);
  EXPECT_DOUBLE_EQ(fit.p_value, 1.0);
}

// The binned variant must accept grid-quantized normal data (the RDT
// measurement situation) that the equal-probability variant rejects.
TEST(ChiSquareTest, QuantizedNormalPassesBinnedVariant) {
  Rng rng(24);
  std::vector<double> xs;
  const double step = 50.0;
  for (int i = 0; i < 20000; ++i) {
    const double latent = rng.NextGaussian(10000.0, 150.0);
    xs.push_back(std::ceil(latent / step) * step);
  }
  const GoodnessOfFit binned = ChiSquareNormalTestBinned(xs);
  EXPECT_TRUE(binned.NormalAt(0.01)) << "p=" << binned.p_value;
}

TEST(ChiSquareTest, QuantizedUniformFailsBinnedVariant) {
  Rng rng(25);
  std::vector<double> xs;
  const double step = 50.0;
  for (int i = 0; i < 20000; ++i) {
    const double latent = 10000.0 + 600.0 * rng.NextDouble();
    xs.push_back(std::ceil(latent / step) * step);
  }
  const GoodnessOfFit binned = ChiSquareNormalTestBinned(xs);
  EXPECT_FALSE(binned.NormalAt(0.05));
}

TEST(ChiSquareTest, TooFewSamplesThrow) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW(ChiSquareNormalTest(xs), FatalError);
  EXPECT_THROW(ChiSquareNormalTestBinned(xs), FatalError);
}

}  // namespace
}  // namespace vrddram::stats
