#include "stats/bootstrap.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "stats/descriptive.h"

namespace vrddram::stats {
namespace {

std::vector<double> NormalSample(std::size_t n, double mean,
                                 double stddev, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) {
    x = rng.NextGaussian(mean, stddev);
  }
  return xs;
}

TEST(BootstrapTest, MeanCiContainsTrueMean) {
  const auto xs = NormalSample(500, 100.0, 10.0, 31);
  Rng rng(1);
  const BootstrapCI ci = Bootstrap(
      xs, [](std::span<const double> s) { return Mean(s); }, rng);
  EXPECT_TRUE(ci.Contains(100.0)) << "[" << ci.lo << ", " << ci.hi << "]";
  EXPECT_NEAR(ci.point, 100.0, 2.0);
  EXPECT_LT(ci.lo, ci.hi);
}

TEST(BootstrapTest, MoreDataNarrowsTheInterval) {
  Rng rng(2);
  const auto small = NormalSample(50, 0.0, 1.0, 32);
  const auto large = NormalSample(5000, 0.0, 1.0, 33);
  const auto mean = [](std::span<const double> s) { return Mean(s); };
  const double small_width = Bootstrap(small, mean, rng).Width();
  const double large_width = Bootstrap(large, mean, rng).Width();
  EXPECT_LT(large_width, small_width / 3.0);
}

TEST(BootstrapTest, WorksForCv) {
  const auto xs = NormalSample(1000, 50.0, 5.0, 34);
  Rng rng(3);
  const BootstrapCI ci = Bootstrap(
      xs,
      [](std::span<const double> s) { return CoefficientOfVariation(s); },
      rng);
  EXPECT_TRUE(ci.Contains(0.1)) << "[" << ci.lo << ", " << ci.hi << "]";
}

TEST(BootstrapTest, DeterministicGivenRngState) {
  const auto xs = NormalSample(200, 10.0, 2.0, 35);
  const auto mean = [](std::span<const double> s) { return Mean(s); };
  Rng a(9);
  Rng b(9);
  const BootstrapCI ca = Bootstrap(xs, mean, a, 500);
  const BootstrapCI cb = Bootstrap(xs, mean, b, 500);
  EXPECT_DOUBLE_EQ(ca.lo, cb.lo);
  EXPECT_DOUBLE_EQ(ca.hi, cb.hi);
}

TEST(BootstrapTest, HigherConfidenceWidensTheInterval) {
  const auto xs = NormalSample(300, 0.0, 1.0, 36);
  const auto mean = [](std::span<const double> s) { return Mean(s); };
  Rng rng(4);
  const double w90 = Bootstrap(xs, mean, rng, 2000, 0.90).Width();
  Rng rng2(4);
  const double w99 = Bootstrap(xs, mean, rng2, 2000, 0.99).Width();
  EXPECT_GT(w99, w90);
}

TEST(BootstrapTest, InvalidInputsThrow) {
  Rng rng(5);
  const auto mean = [](std::span<const double> s) { return Mean(s); };
  EXPECT_THROW(Bootstrap({}, mean, rng), FatalError);
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW(Bootstrap(xs, mean, rng, 5), FatalError);
  EXPECT_THROW(Bootstrap(xs, mean, rng, 100, 1.5), FatalError);
}

}  // namespace
}  // namespace vrddram::stats
