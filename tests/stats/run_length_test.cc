#include "stats/run_length.h"

#include <gtest/gtest.h>

#include <vector>

namespace vrddram::stats {
namespace {

TEST(RunLengthTest, EmptySeries) {
  const std::vector<std::int64_t> xs;
  const RunLengthHistogram hist = ComputeRunLengths(xs);
  EXPECT_TRUE(hist.counts.empty());
  EXPECT_EQ(hist.TotalRuns(), 0u);
  EXPECT_EQ(hist.LongestRun(), 0u);
  EXPECT_DOUBLE_EQ(hist.ImmediateChangeFraction(), 0.0);
}

TEST(RunLengthTest, SingleValue) {
  const std::vector<std::int64_t> xs = {5};
  const RunLengthHistogram hist = ComputeRunLengths(xs);
  EXPECT_EQ(hist.TotalRuns(), 1u);
  EXPECT_EQ(hist.counts.at(1), 1u);
}

TEST(RunLengthTest, KnownRuns) {
  // Runs: {1,1}, {2}, {3,3,3}, {2} -> lengths 2,1,3,1.
  const std::vector<std::int64_t> xs = {1, 1, 2, 3, 3, 3, 2};
  const RunLengthHistogram hist = ComputeRunLengths(xs);
  EXPECT_EQ(hist.TotalRuns(), 4u);
  EXPECT_EQ(hist.counts.at(1), 2u);
  EXPECT_EQ(hist.counts.at(2), 1u);
  EXPECT_EQ(hist.counts.at(3), 1u);
  EXPECT_EQ(hist.LongestRun(), 3u);
  EXPECT_DOUBLE_EQ(hist.ImmediateChangeFraction(), 0.5);
}

TEST(RunLengthTest, AllSame) {
  const std::vector<std::int64_t> xs(10, 7);
  const RunLengthHistogram hist = ComputeRunLengths(xs);
  EXPECT_EQ(hist.TotalRuns(), 1u);
  EXPECT_EQ(hist.LongestRun(), 10u);
  EXPECT_DOUBLE_EQ(hist.ImmediateChangeFraction(), 0.0);
}

TEST(RunLengthTest, AllDifferent) {
  const std::vector<std::int64_t> xs = {1, 2, 3, 4, 5};
  const RunLengthHistogram hist = ComputeRunLengths(xs);
  EXPECT_EQ(hist.TotalRuns(), 5u);
  EXPECT_DOUBLE_EQ(hist.ImmediateChangeFraction(), 1.0);
}

TEST(RunLengthTest, MergeAggregates) {
  RunLengthHistogram a = ComputeRunLengths(
      std::vector<std::int64_t>{1, 1, 2});
  const RunLengthHistogram b = ComputeRunLengths(
      std::vector<std::int64_t>{3, 3, 3});
  Merge(a, b);
  EXPECT_EQ(a.counts.at(1), 1u);
  EXPECT_EQ(a.counts.at(2), 1u);
  EXPECT_EQ(a.counts.at(3), 1u);
  EXPECT_EQ(a.TotalRuns(), 3u);
}

}  // namespace
}  // namespace vrddram::stats
