#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace vrddram::stats {
namespace {

TEST(DescriptiveTest, MeanOfKnownValues) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
}

TEST(DescriptiveTest, MeanOfEmptyThrows) {
  const std::vector<double> xs;
  EXPECT_THROW(Mean(xs), FatalError);
}

TEST(DescriptiveTest, SampleVariance) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Known: population variance 4, sample variance 32/7.
  EXPECT_NEAR(SampleVariance(xs), 32.0 / 7.0, 1e-12);
}

TEST(DescriptiveTest, SingleElementVarianceIsZero) {
  const std::vector<double> xs = {3.0};
  EXPECT_DOUBLE_EQ(SampleVariance(xs), 0.0);
  EXPECT_DOUBLE_EQ(SampleStddev(xs), 0.0);
}

TEST(DescriptiveTest, CoefficientOfVariation) {
  const std::vector<double> xs = {9.0, 10.0, 11.0};
  EXPECT_NEAR(CoefficientOfVariation(xs), 1.0 / 10.0, 1e-12);
}

TEST(DescriptiveTest, CoefficientOfVariationZeroMeanThrows) {
  const std::vector<double> xs = {-1.0, 1.0};
  EXPECT_THROW(CoefficientOfVariation(xs), FatalError);
}

TEST(DescriptiveTest, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.0, 0.0};
  EXPECT_DOUBLE_EQ(Min(xs), -1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 7.0);
}

TEST(DescriptiveTest, PercentileLinearInterpolation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25.0), 1.75);
}

TEST(DescriptiveTest, PercentileOutOfRangeThrows) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(Percentile(xs, -1.0), FatalError);
  EXPECT_THROW(Percentile(xs, 101.0), FatalError);
}

TEST(DescriptiveTest, MedianOddAndEven) {
  const std::vector<double> odd = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Median(odd), 3.0);
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Median(even), 2.5);
}

// Box stats follow the paper's footnote 6: Q1/Q3 are the medians of
// the first/second halves of the ordered data.
TEST(DescriptiveTest, BoxStatsFootnoteSixConvention) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const BoxStats box = ComputeBoxStats(xs);
  EXPECT_DOUBLE_EQ(box.min, 1.0);
  EXPECT_DOUBLE_EQ(box.max, 9.0);
  EXPECT_DOUBLE_EQ(box.median, 5.0);
  // First half: 1 2 3 4 -> 2.5; second half: 6 7 8 9 -> 7.5.
  EXPECT_DOUBLE_EQ(box.q1, 2.5);
  EXPECT_DOUBLE_EQ(box.q3, 7.5);
  EXPECT_DOUBLE_EQ(box.Iqr(), 5.0);
  EXPECT_DOUBLE_EQ(box.mean, 5.0);
}

TEST(DescriptiveTest, BoxStatsEvenCount) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6};
  const BoxStats box = ComputeBoxStats(xs);
  EXPECT_DOUBLE_EQ(box.q1, 2.0);
  EXPECT_DOUBLE_EQ(box.median, 3.5);
  EXPECT_DOUBLE_EQ(box.q3, 5.0);
}

TEST(DescriptiveTest, BoxStatsSingleton) {
  const std::vector<double> xs = {7.0};
  const BoxStats box = ComputeBoxStats(xs);
  EXPECT_DOUBLE_EQ(box.min, 7.0);
  EXPECT_DOUBLE_EQ(box.q1, 7.0);
  EXPECT_DOUBLE_EQ(box.q3, 7.0);
  EXPECT_DOUBLE_EQ(box.max, 7.0);
}

TEST(DescriptiveTest, ToDoubles) {
  const std::vector<std::int64_t> xs = {1, -2, 3};
  const std::vector<double> ds = ToDoubles(xs);
  ASSERT_EQ(ds.size(), 3u);
  EXPECT_DOUBLE_EQ(ds[1], -2.0);
}

// Percentile must not mutate or depend on input order.
class PercentileOrderTest : public ::testing::TestWithParam<double> {};

TEST_P(PercentileOrderTest, OrderInvariant) {
  const std::vector<double> sorted = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> shuffled = {5, 1, 8, 3, 7, 2, 6, 4};
  const double p = GetParam();
  EXPECT_DOUBLE_EQ(Percentile(sorted, p), Percentile(shuffled, p));
}

INSTANTIATE_TEST_SUITE_P(Percentiles, PercentileOrderTest,
                         ::testing::Values(0.0, 10.0, 25.0, 50.0, 75.0,
                                           90.0, 99.0, 100.0));

}  // namespace
}  // namespace vrddram::stats
