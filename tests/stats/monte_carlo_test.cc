#include "stats/monte_carlo.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"

namespace vrddram::stats {
namespace {

TEST(MonteCarloTest, DegenerateSeriesAlwaysFindsMin) {
  const std::vector<std::int64_t> series(100, 500);
  Rng rng(1);
  const MinSampleResult result =
      SampleMinStatistics(series, 1, 1000, rng);
  EXPECT_DOUBLE_EQ(result.prob_find_min, 1.0);
  EXPECT_DOUBLE_EQ(result.expected_norm_min, 1.0);
}

TEST(MonteCarloTest, ExactFormulaSingleMinimum) {
  // One minimum among 1000: P(find with N=1) = 1/1000.
  std::vector<std::int64_t> series(1000, 2000);
  series[123] = 1000;
  EXPECT_NEAR(ExactProbFindMin(series, 1), 0.001, 1e-12);
  // N=500 draws with replacement: 1 - (999/1000)^500.
  EXPECT_NEAR(ExactProbFindMin(series, 500),
              1.0 - std::pow(0.999, 500.0), 1e-12);
}

TEST(MonteCarloTest, ExactExpectedNormalizedMinTwoValues) {
  // Half 1000s, half 2000s. With N=1: E[min]=1500 -> normalized 1.5.
  std::vector<std::int64_t> series;
  for (int i = 0; i < 50; ++i) {
    series.push_back(1000);
    series.push_back(2000);
  }
  EXPECT_NEAR(ExactExpectedNormalizedMin(series, 1), 1.5, 1e-12);
  // With N=2: P(min=2000) = 0.25 -> E = 0.75*1000 + 0.25*2000 = 1250.
  EXPECT_NEAR(ExactExpectedNormalizedMin(series, 2), 1.25, 1e-12);
}

TEST(MonteCarloTest, ExactProbWithinMargin) {
  std::vector<std::int64_t> series = {1000, 1050, 1200, 2000};
  // 10% margin -> values <= 1100 qualify: {1000, 1050} = 2 of 4.
  EXPECT_NEAR(ExactProbWithinMargin(series, 1, 0.10), 0.5, 1e-12);
  // 0% margin -> only the minimum qualifies.
  EXPECT_NEAR(ExactProbWithinMargin(series, 1, 0.0), 0.25, 1e-12);
}

class McVsExactTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(McVsExactTest, MonteCarloMatchesClosedForm) {
  // A heterogeneous series with a rare minimum.
  std::vector<std::int64_t> series;
  for (int i = 0; i < 300; ++i) {
    series.push_back(5000 + (i % 17) * 50);
  }
  series[42] = 3000;
  series[271] = 3000;

  const std::size_t n = GetParam();
  Rng rng(777);
  const std::vector<double> margins = {0.10, 0.50};
  const MinSampleResult mc =
      SampleMinStatistics(series, n, 40000, rng, margins);

  EXPECT_NEAR(mc.prob_find_min, ExactProbFindMin(series, n), 0.01);
  EXPECT_NEAR(mc.expected_norm_min,
              ExactExpectedNormalizedMin(series, n), 0.01);
  EXPECT_NEAR(mc.prob_within_margin[0],
              ExactProbWithinMargin(series, n, 0.10), 0.01);
  EXPECT_NEAR(mc.prob_within_margin[1],
              ExactProbWithinMargin(series, n, 0.50), 0.01);
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, McVsExactTest,
                         ::testing::Values(1, 3, 5, 10, 50, 500));

TEST(MonteCarloTest, ProbabilitiesIncreaseWithN) {
  std::vector<std::int64_t> series;
  for (int i = 0; i < 1000; ++i) {
    series.push_back(4000 + (i * 37) % 1000);
  }
  double prev = 0.0;
  for (const std::size_t n : {1u, 5u, 50u, 500u}) {
    const double p = ExactProbFindMin(series, n);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(MonteCarloTest, InvalidInputsThrow) {
  const std::vector<std::int64_t> empty;
  Rng rng(1);
  EXPECT_THROW(SampleMinStatistics(empty, 1, 10, rng), FatalError);
  const std::vector<std::int64_t> series = {100};
  EXPECT_THROW(SampleMinStatistics(series, 0, 10, rng), FatalError);
  EXPECT_THROW(SampleMinStatistics(series, 1, 0, rng), FatalError);
  const std::vector<std::int64_t> nonpositive = {0, 5};
  EXPECT_THROW(SampleMinStatistics(nonpositive, 1, 10, rng), FatalError);
}

}  // namespace
}  // namespace vrddram::stats
