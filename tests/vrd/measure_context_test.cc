// The series-scoped measurement fast path (DESIGN.md §9): the
// MeasureContext kernel must be bit-identical to the legacy per-call
// path, trap relaxation must follow the Q10 temperature law, and
// SamplePoisson must reject rates its Knuth loop cannot handle.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "dram/cell_encoding.h"
#include "vrd/chip_catalog.h"
#include "vrd/trap_engine.h"

namespace vrddram::vrd {
namespace {

dram::Organization SmallOrg() {
  dram::Organization org;
  org.num_banks = 1;
  org.rows_per_bank = 1024;
  org.row_bytes = 1024;
  return org;
}

TEST(SamplePoissonTest, RejectsDegenerateRates) {
  Rng rng(1);
  // exp(-lambda) underflows the Knuth loop's acceptance product well
  // before DBL_MIN; the engine caps supported rates at 50.
  EXPECT_THROW(SamplePoisson(rng, 50.1), FatalError);
  EXPECT_THROW(SamplePoisson(rng, 1e6), FatalError);
  EXPECT_NO_THROW(SamplePoisson(rng, 50.0));
  EXPECT_NO_THROW(SamplePoisson(rng, 0.0));
}

/**
 * Occupancy relaxation toward the steady state follows the Q10 law.
 *
 * For a single two-state trap sampled on a fixed grid dt, the chain
 *   p = occ + (prev - occ) * exp(-rate * q10^((T-50)/10) * dt)
 * has stationary occupancy `occ` and a per-step state-change
 * probability of 2*occ*(1-occ)*(1 - decay(T)). With measurement noise
 * off, every state change moves the analytic threshold, so the
 * observed change fraction measures the relaxation rate directly -
 * at both temperatures it must match the closed form built from the
 * trap's own parameters.
 */
TEST(TrapTemperatureScalingTest, RelaxationMatchesQ10ClosedForm) {
  FaultProfile profile;
  profile.median_rdt = 10000.0;
  profile.weak_cells_mean = 4.0;
  profile.fast_trap_mean = 1.0;
  profile.rare_trap_prob = 0.0;
  profile.heavy_trap_prob = 0.0;
  profile.measurement_noise_sigma = 0.0;
  profile.fast_rate_lo_hz = 5.0;
  profile.fast_rate_hi_hz = 10.0;
  profile.trap_rate_q10 = 2.0;
  profile.t_ras = 32 * units::kNanosecond;

  const Tick dt = 20 * units::kMillisecond;
  const int n = 6000;

  auto observed_change_fraction = [&](Celsius temp, double* predicted) {
    TrapFaultEngine engine(profile, 3, SmallOrg());
    const dram::CellEncodingLayout encoding(1, 0.0);
    // A row whose one weak cell owns exactly one trap, so the
    // threshold is a two-valued function of that trap's state.
    dram::PhysicalRow row{0};
    const TrapFaultEngine::Trap* trap = nullptr;
    for (dram::RowAddr r = 1; r < 1000; ++r) {
      const auto& state = engine.RowStateOf(0, dram::PhysicalRow{r});
      if (state.cells.size() == 1 && state.cells[0].trap_count == 1) {
        row = dram::PhysicalRow{r};
        trap = &state.traps[state.cells[0].trap_begin];
        break;
      }
    }
    if (trap == nullptr) {
      ADD_FAILURE() << "no single-trap row below 1000";
      return 0.0;
    }
    const double q10_scale =
        std::pow(profile.trap_rate_q10, (temp - 50.0) / 10.0);
    const double decay =
        std::exp(-trap->rate_hz * q10_scale * units::ToSeconds(dt));
    *predicted = 2.0 * trap->occupancy * (1.0 - trap->occupancy) *
                 (1.0 - decay);

    double prev = -1.0;
    int changes = 0;
    for (int i = 0; i < n; ++i) {
      const double s = engine.MinFlipHammerCount(
          0, row, 0xFF, 0x00, profile.t_ras, temp, encoding,
          static_cast<Tick>(i) * dt);
      if (prev >= 0.0 && s != prev) {
        ++changes;
      }
      prev = s;
    }
    return static_cast<double>(changes) / n;
  };

  double predicted_cold = 0.0;
  double predicted_hot = 0.0;
  const double cold = observed_change_fraction(50.0, &predicted_cold);
  const double hot = observed_change_fraction(80.0, &predicted_hot);

  EXPECT_NEAR(cold, predicted_cold, 0.2 * predicted_cold + 0.01);
  EXPECT_NEAR(hot, predicted_hot, 0.2 * predicted_hot + 0.01);
  // Q10 = 2 over 30 C octuples the rate, so the hot chain relaxes
  // measurably faster.
  EXPECT_GT(predicted_hot, predicted_cold);
  EXPECT_GT(hot, cold);
}

/**
 * The regression test backing the DESIGN.md §9 contract: on one device
 * per manufacturer plus an HBM2 chip, a MeasureContext-based series is
 * bit-identical - thresholds, per-cell flip points, and dynamics-RNG
 * consumption - to the legacy per-call path issuing the same queries
 * at the same ticks.
 */
TEST(MeasureContextTest, BitIdenticalToLegacyPathAcrossCatalog) {
  for (const char* name : {"H1", "M1", "S2", "Chip0"}) {
    SCOPED_TRACE(name);
    const TestedChip chip = MakeTestedChip(name);
    TrapFaultEngine legacy(chip.fault, chip.device.seed,
                           chip.device.org);
    TrapFaultEngine ctxeng(chip.fault, chip.device.seed,
                           chip.device.org);
    const dram::CellEncodingLayout encoding(chip.device.seed,
                                            chip.device.anti_cell_fraction);
    const Tick t_on = chip.device.timing.tRAS;
    const Celsius temp = 65.0;

    // First row with at least one weak cell; built identically (same
    // manufacturing draws) in both engines.
    dram::PhysicalRow row{0};
    for (dram::RowAddr r = 1; r < 4000; ++r) {
      if (!legacy.RowStateOf(0, dram::PhysicalRow{r}).cells.empty()) {
        row = dram::PhysicalRow{r};
        break;
      }
    }
    ASSERT_NE(row.value, 0u);
    ASSERT_FALSE(ctxeng.RowStateOf(0, row).cells.empty());

    MeasureContext ctx = ctxeng.MakeMeasureContext(
        0, row, 0x55, 0xAA, t_on, temp, encoding, 0);
    EXPECT_EQ(ctx.cell_count(),
              legacy.RowStateOf(0, row).cells.size());

    // Irregular tick grid: revisits a handful of deltas (exercising
    // the decay memo) and includes fresh ones (exercising misses).
    const Tick deltas[] = {20 * units::kMillisecond,
                           20 * units::kMillisecond,
                           7 * units::kMillisecond,
                           1 * units::kSecond,
                           20 * units::kMillisecond,
                           333 * units::kMicrosecond};
    Tick now = 0;
    std::vector<TrapFaultEngine::CellFlipPoint> scratch;
    for (int i = 0; i < 240; ++i) {
      now += deltas[i % 6];
      if (i % 3 == 2) {
        const auto want = legacy.PerCellFlipHammerCounts(
            0, row, 0x55, 0xAA, t_on, temp, encoding, now);
        ctxeng.PerCellFlipHammerCounts(ctx, now, scratch);
        ASSERT_EQ(want.size(), scratch.size());
        for (std::size_t c = 0; c < want.size(); ++c) {
          EXPECT_EQ(want[c].bit_index, scratch[c].bit_index);
          EXPECT_EQ(want[c].hammer_count, scratch[c].hammer_count);
        }
      } else {
        const double want = legacy.MinFlipHammerCount(
            0, row, 0x55, 0xAA, t_on, temp, encoding, now);
        EXPECT_EQ(want, ctxeng.MinFlipHammerCount(ctx, now));
      }
    }
  }
}

}  // namespace
}  // namespace vrddram::vrd
