// The series-scoped measurement fast path (DESIGN.md §9): the
// MeasureContext kernel must be bit-identical to the legacy per-call
// path, trap relaxation must follow the Q10 temperature law, and
// SamplePoisson must reject rates its Knuth loop cannot handle.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/error.h"
#include "common/rng.h"
#include "dram/cell_encoding.h"
#include "vrd/chip_catalog.h"
#include "vrd/trap_engine.h"

namespace vrddram::vrd {
namespace {

dram::Organization SmallOrg() {
  dram::Organization org;
  org.num_banks = 1;
  org.rows_per_bank = 1024;
  org.row_bytes = 1024;
  return org;
}

TEST(SamplePoissonTest, RejectsDegenerateRates) {
  Rng rng(1);
  // exp(-lambda) underflows the Knuth loop's acceptance product well
  // before DBL_MIN; the engine caps supported rates at 50.
  EXPECT_THROW(SamplePoisson(rng, 50.1), FatalError);
  EXPECT_THROW(SamplePoisson(rng, 1e6), FatalError);
  EXPECT_THROW(PoissonSampler(50.1), FatalError);
  EXPECT_THROW(PoissonSampler(-0.5), FatalError);
  EXPECT_NO_THROW(SamplePoisson(rng, 50.0));
  EXPECT_NO_THROW(SamplePoisson(rng, 0.0));
}

/**
 * Draw sequences are pinned: row manufacturing (weak-cell and trap
 * counts) consumes these exact draws, so any change to the sampler —
 * including the PoissonSampler limit hoisting — that shifted a single
 * value would silently rebuild every simulated chip. Golden values
 * span the profile regimes: sparse (0.1), typical (10), and just
 * under the Knuth cap (49.9).
 */
TEST(SamplePoissonTest, DrawSequencesArePinned) {
  const struct {
    double lambda;
    std::size_t want[12];
  } cases[] = {
      {0.1, {0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0}},
      {10.0, {10, 7, 8, 7, 15, 13, 10, 10, 7, 16, 9, 8}},
      {49.9, {49, 56, 62, 52, 37, 46, 51, 37, 51, 46, 47, 52}},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.lambda);
    Rng rng(MixSeed(0x90, 0x15));
    for (std::size_t i = 0; i < 12; ++i) {
      EXPECT_EQ(SamplePoisson(rng, c.lambda), c.want[i]) << "draw " << i;
    }
  }
}

/// The hoisted-limit sampler is draw-for-draw identical to the
/// free function, including its RNG consumption (the streams stay
/// aligned afterwards).
TEST(SamplePoissonTest, SamplerMatchesFreeFunctionSequence) {
  for (const double lambda : {0.1, 1.6, 10.0, 49.9}) {
    SCOPED_TRACE(lambda);
    Rng a(MixSeed(0x90, 0x16));
    Rng b(MixSeed(0x90, 0x16));
    const PoissonSampler sampler(lambda);
    EXPECT_EQ(sampler.lambda(), lambda);
    for (int i = 0; i < 200; ++i) {
      EXPECT_EQ(SamplePoisson(a, lambda), sampler(b));
    }
    // Identical consumption: the next raw draws agree too.
    EXPECT_EQ(a.NextDouble(), b.NextDouble());
  }
}

/**
 * Occupancy relaxation toward the steady state follows the Q10 law.
 *
 * For a single two-state trap sampled on a fixed grid dt, the chain
 *   p = occ + (prev - occ) * exp(-rate * q10^((T-50)/10) * dt)
 * has stationary occupancy `occ` and a per-step state-change
 * probability of 2*occ*(1-occ)*(1 - decay(T)). With measurement noise
 * off, every state change moves the analytic threshold, so the
 * observed change fraction measures the relaxation rate directly -
 * at both temperatures it must match the closed form built from the
 * trap's own parameters.
 */
TEST(TrapTemperatureScalingTest, RelaxationMatchesQ10ClosedForm) {
  FaultProfile profile;
  profile.median_rdt = 10000.0;
  profile.weak_cells_mean = 4.0;
  profile.fast_trap_mean = 1.0;
  profile.rare_trap_prob = 0.0;
  profile.heavy_trap_prob = 0.0;
  profile.measurement_noise_sigma = 0.0;
  profile.fast_rate_lo_hz = 5.0;
  profile.fast_rate_hi_hz = 10.0;
  profile.trap_rate_q10 = 2.0;
  profile.t_ras = 32 * units::kNanosecond;

  const Tick dt = 20 * units::kMillisecond;
  const int n = 6000;

  auto observed_change_fraction = [&](Celsius temp, double* predicted) {
    TrapFaultEngine engine(profile, 3, SmallOrg());
    const dram::CellEncodingLayout encoding(1, 0.0);
    // A row whose one weak cell owns exactly one trap, so the
    // threshold is a two-valued function of that trap's state.
    dram::PhysicalRow row{0};
    const TrapFaultEngine::Trap* trap = nullptr;
    for (dram::RowAddr r = 1; r < 1000; ++r) {
      const auto& state = engine.RowStateOf(0, dram::PhysicalRow{r});
      if (state.cells.size() == 1 && state.cells[0].trap_count == 1) {
        row = dram::PhysicalRow{r};
        trap = &state.traps[state.cells[0].trap_begin];
        break;
      }
    }
    if (trap == nullptr) {
      ADD_FAILURE() << "no single-trap row below 1000";
      return 0.0;
    }
    const double q10_scale =
        std::pow(profile.trap_rate_q10, (temp - 50.0) / 10.0);
    const double decay =
        std::exp(-trap->rate_hz * q10_scale * units::ToSeconds(dt));
    *predicted = 2.0 * trap->occupancy * (1.0 - trap->occupancy) *
                 (1.0 - decay);

    double prev = -1.0;
    int changes = 0;
    for (int i = 0; i < n; ++i) {
      const double s = engine.MinFlipHammerCount(
          0, row, 0xFF, 0x00, profile.t_ras, temp, encoding,
          static_cast<Tick>(i) * dt);
      if (prev >= 0.0 && s != prev) {
        ++changes;
      }
      prev = s;
    }
    return static_cast<double>(changes) / n;
  };

  double predicted_cold = 0.0;
  double predicted_hot = 0.0;
  const double cold = observed_change_fraction(50.0, &predicted_cold);
  const double hot = observed_change_fraction(80.0, &predicted_hot);

  EXPECT_NEAR(cold, predicted_cold, 0.2 * predicted_cold + 0.01);
  EXPECT_NEAR(hot, predicted_hot, 0.2 * predicted_hot + 0.01);
  // Q10 = 2 over 30 C octuples the rate, so the hot chain relaxes
  // measurably faster.
  EXPECT_GT(predicted_hot, predicted_cold);
  EXPECT_GT(hot, cold);
}

/**
 * The regression test backing the DESIGN.md §9 contract: on every
 * tested chip of the catalog (all DDR4 modules and HBM2 chips), a
 * MeasureContext-based series is bit-identical - thresholds, per-cell
 * flip points, and dynamics-RNG consumption - to the legacy per-call
 * path issuing the same queries at the same ticks.
 */
TEST(MeasureContextTest, BitIdenticalToLegacyPathAcrossCatalog) {
  for (const std::string& name : AllDeviceNames()) {
    SCOPED_TRACE(name);
    const TestedChip chip = MakeTestedChip(name);
    TrapFaultEngine legacy(chip.fault, chip.device.seed,
                           chip.device.org);
    TrapFaultEngine ctxeng(chip.fault, chip.device.seed,
                           chip.device.org);
    const dram::CellEncodingLayout encoding(chip.device.seed,
                                            chip.device.anti_cell_fraction);
    const Tick t_on = chip.device.timing.tRAS;
    const Celsius temp = 65.0;

    // First row with at least one weak cell; built identically (same
    // manufacturing draws) in both engines.
    dram::PhysicalRow row{0};
    for (dram::RowAddr r = 1; r < 4000; ++r) {
      if (!legacy.RowStateOf(0, dram::PhysicalRow{r}).cells.empty()) {
        row = dram::PhysicalRow{r};
        break;
      }
    }
    ASSERT_NE(row.value, 0u);
    ASSERT_FALSE(ctxeng.RowStateOf(0, row).cells.empty());

    MeasureContext ctx = ctxeng.MakeMeasureContext(
        0, row, 0x55, 0xAA, t_on, temp, encoding, 0);
    EXPECT_EQ(ctx.cell_count(),
              legacy.RowStateOf(0, row).cells.size());

    // Irregular tick grid: revisits a handful of deltas (exercising
    // the decay memo) and includes fresh ones (exercising misses).
    const Tick deltas[] = {20 * units::kMillisecond,
                           20 * units::kMillisecond,
                           7 * units::kMillisecond,
                           1 * units::kSecond,
                           20 * units::kMillisecond,
                           333 * units::kMicrosecond};
    Tick now = 0;
    std::vector<TrapFaultEngine::CellFlipPoint> scratch;
    for (int i = 0; i < 240; ++i) {
      now += deltas[i % 6];
      if (i % 3 == 2) {
        const auto want = legacy.PerCellFlipHammerCounts(
            0, row, 0x55, 0xAA, t_on, temp, encoding, now);
        ctxeng.PerCellFlipHammerCounts(ctx, now, scratch);
        ASSERT_EQ(want.size(), scratch.size());
        for (std::size_t c = 0; c < want.size(); ++c) {
          EXPECT_EQ(want[c].bit_index, scratch[c].bit_index);
          EXPECT_EQ(want[c].hammer_count, scratch[c].hammer_count);
        }
      } else {
        const double want = legacy.MinFlipHammerCount(
            0, row, 0x55, 0xAA, t_on, temp, encoding, now);
        EXPECT_EQ(want, ctxeng.MinFlipHammerCount(ctx, now));
      }
    }
  }
}

/**
 * The DESIGN.md §10 contract: the bank-wide batched kernel — SoA
 * gather, SIMD-dispatched decay blend, arena-backed storage — is
 * bit-identical per row to the scalar MeasureContext path driven in
 * the same lockstep, including each row's dynamics-RNG consumption.
 * Also exercises the mixed-history fallback by measuring one batch row
 * through the scalar path mid-series on both engines.
 */
TEST(BatchMeasureContextTest, BitIdenticalToScalarContextLockstep) {
  for (const char* name : {"H0", "M2", "S0", "Chip1"}) {
    SCOPED_TRACE(name);
    const TestedChip chip = MakeTestedChip(name);
    TrapFaultEngine scalar(chip.fault, chip.device.seed,
                           chip.device.org);
    TrapFaultEngine batched(chip.fault, chip.device.seed,
                            chip.device.org);
    const dram::CellEncodingLayout encoding(chip.device.seed,
                                            chip.device.anti_cell_fraction);
    const Tick t_on = chip.device.timing.tRAS;
    const Celsius temp = 60.0;

    // The first 8 rows with weak cells, plus one deliberately empty
    // batch member if an early row has none (exercises zero-count
    // spans in the SoA addressing).
    std::vector<dram::PhysicalRow> rows;
    for (dram::RowAddr r = 1; r < 4000 && rows.size() < 8; ++r) {
      const auto& state = scalar.RowStateOf(0, dram::PhysicalRow{r});
      if (!state.cells.empty() || rows.size() == 3) {
        rows.push_back(dram::PhysicalRow{r});
      }
    }
    ASSERT_EQ(rows.size(), 8u);

    // Scalar reference: one per-row context, driven in lockstep.
    std::vector<MeasureContext> ctxs(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      scalar.MakeMeasureContext(0, rows[r], 0x55, 0xAA, t_on, temp,
                                encoding, 0, ctxs[r]);
    }
    MonotonicArena arena;
    BatchMeasureContext batch = batched.MakeBatchMeasureContext(
        0, rows, 0x55, 0xAA, t_on, temp, encoding, 0, arena);
    ASSERT_EQ(batch.row_count(), rows.size());
    std::size_t cell_total = 0;
    for (const MeasureContext& c : ctxs) {
      cell_total += c.cell_count();
    }
    EXPECT_EQ(batch.total_cell_count(), cell_total);

    const Tick deltas[] = {20 * units::kMillisecond,
                           20 * units::kMillisecond,
                           7 * units::kMillisecond,
                           1 * units::kSecond,
                           20 * units::kMillisecond,
                           333 * units::kMicrosecond};
    Tick now = 0;
    std::vector<double> min_hc(rows.size());
    std::vector<TrapFaultEngine::CellFlipPoint> flat;
    std::vector<TrapFaultEngine::CellFlipPoint> scratch;
    for (int i = 0; i < 120; ++i) {
      now += deltas[i % 6];
      if (i % 3 == 2) {
        batched.BatchPerCellFlipHammerCounts(batch, now, flat);
        ASSERT_EQ(flat.size(), batch.total_cell_count());
        for (std::size_t r = 0; r < rows.size(); ++r) {
          scalar.PerCellFlipHammerCounts(ctxs[r], now, scratch);
          const auto [begin, count] = batch.RowCellRange(r);
          ASSERT_EQ(scratch.size(), count);
          for (std::size_t c = 0; c < scratch.size(); ++c) {
            EXPECT_EQ(scratch[c].bit_index, flat[begin + c].bit_index);
            EXPECT_EQ(scratch[c].hammer_count,
                      flat[begin + c].hammer_count);
          }
        }
      } else {
        batched.BatchMinFlipHammerCounts(batch, now, min_hc);
        for (std::size_t r = 0; r < rows.size(); ++r) {
          EXPECT_EQ(scalar.MinFlipHammerCount(ctxs[r], now), min_hc[r])
              << "row " << r << " measurement " << i;
        }
      }
      if (i == 60) {
        // Knock one row out of lockstep through the scalar path on
        // BOTH engines: the next batch call must take the
        // mixed-history fallback and still match bit for bit.
        const Tick skew = now + 3 * units::kMillisecond;
        scalar.MinFlipHammerCount(ctxs[5], skew);
        batched.MinFlipHammerCount(
            0, rows[5], 0x55, 0xAA, t_on, temp, encoding, skew);
      }
    }
  }
}

/// Rebuilding a hoisted MeasureContext must not grow memory once warm
/// (the allocation-free steady state the campaign shards rely on).
TEST(MeasureContextTest, ReuseOverloadMatchesFreshContext) {
  const TestedChip chip = MakeTestedChip("H1");
  // `probe` answers which rows have weak cells; `a` and `b` then first
  // see each row at the same running-clock instant, so their trap
  // histories stay aligned.
  TrapFaultEngine probe(chip.fault, chip.device.seed, chip.device.org);
  TrapFaultEngine a(chip.fault, chip.device.seed, chip.device.org);
  TrapFaultEngine b(chip.fault, chip.device.seed, chip.device.org);
  const dram::CellEncodingLayout encoding(chip.device.seed,
                                          chip.device.anti_cell_fraction);
  const Tick t_on = chip.device.timing.tRAS;

  MeasureContext reused;
  Tick now = 0;
  int compared = 0;
  for (dram::RowAddr r = 1; r < 200; ++r) {
    const dram::PhysicalRow row{r};
    if (probe.RowStateOf(0, row).cells.empty()) {
      continue;
    }
    // Fresh context per row on one engine, one rebuilt-in-place
    // context on the other: identical series.
    MeasureContext fresh = a.MakeMeasureContext(
        0, row, 0xFF, 0x00, t_on, 55.0, encoding, now);
    b.MakeMeasureContext(0, row, 0xFF, 0x00, t_on, 55.0, encoding, now,
                         reused);
    EXPECT_EQ(fresh.cell_count(), reused.cell_count());
    for (int i = 0; i < 12; ++i) {
      now += 15 * units::kMillisecond;
      EXPECT_EQ(a.MinFlipHammerCount(fresh, now),
                b.MinFlipHammerCount(reused, now));
    }
    ++compared;
  }
  EXPECT_GT(compared, 3);
}

}  // namespace
}  // namespace vrddram::vrd
