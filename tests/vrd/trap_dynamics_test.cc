// Temporal dynamics of the trap engine: stationarity, decorrelation,
// temperature acceleration, and intra-row threshold correlation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "dram/cell_encoding.h"
#include "vrd/trap_engine.h"

namespace vrddram::vrd {
namespace {

dram::Organization SmallOrg() {
  dram::Organization org;
  org.num_banks = 1;
  org.rows_per_bank = 1024;
  org.row_bytes = 1024;
  return org;
}

FaultProfile NoiseOnlyProfile() {
  FaultProfile profile;
  profile.median_rdt = 10000.0;
  profile.weak_cells_mean = 4.0;
  profile.fast_trap_mean = 0.0;
  profile.rare_trap_prob = 0.0;
  profile.heavy_trap_prob = 0.0;
  profile.measurement_noise_sigma = 0.02;
  profile.t_ras = 32 * units::kNanosecond;
  return profile;
}

TEST(TrapDynamicsTest, FastTrapOccupancyMatchesStationary) {
  FaultProfile profile = NoiseOnlyProfile();
  profile.measurement_noise_sigma = 0.0;
  profile.fast_trap_mean = 1.0;
  TrapFaultEngine engine(profile, 3, SmallOrg());
  const dram::CellEncodingLayout encoding(1, 0.0);

  // Find a row whose first cell has exactly one trap.
  dram::PhysicalRow row{0};
  const TrapFaultEngine::Trap* trap = nullptr;
  for (dram::RowAddr r = 1; r < 1000; ++r) {
    const auto& state = engine.RowStateOf(0, dram::PhysicalRow{r});
    if (state.cells.size() == 1 && state.cells[0].trap_count == 1) {
      row = dram::PhysicalRow{r};
      trap = &state.traps[state.cells[0].trap_begin];
      break;
    }
  }
  ASSERT_NE(trap, nullptr);
  const double occupancy = trap->occupancy;

  // Sample the analytic threshold far apart in time: the fraction of
  // samples in the "occupied" (lower) state matches the stationary
  // occupancy.
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i) {
    samples.push_back(engine.MinFlipHammerCount(
        0, row, 0xFF, 0x00, profile.t_ras, 50.0, encoding,
        static_cast<Tick>(i) * units::kSecond));
  }
  const double hi = *std::max_element(samples.begin(), samples.end());
  int occupied = 0;
  for (const double s : samples) {
    if (s < hi * 0.999) {
      ++occupied;
    }
  }
  EXPECT_NEAR(static_cast<double>(occupied) / samples.size(), occupancy,
              0.05);
}

TEST(TrapDynamicsTest, ShortIntervalsPreserveState) {
  // Sampling much faster than the trap rate keeps the state sticky;
  // sampling much slower decorrelates it.
  FaultProfile profile = NoiseOnlyProfile();
  profile.measurement_noise_sigma = 0.0;
  profile.fast_trap_mean = 1.0;
  profile.fast_rate_lo_hz = 10.0;
  profile.fast_rate_hi_hz = 20.0;

  auto change_rate = [&](Tick dt) {
    TrapFaultEngine engine(profile, 3, SmallOrg());
    const dram::CellEncodingLayout encoding(1, 0.0);
    // A row with a single trapped cell, so its state drives the min.
    dram::PhysicalRow row{0};
    for (dram::RowAddr r = 1; r < 1000; ++r) {
      const auto& state = engine.RowStateOf(0, dram::PhysicalRow{r});
      if (state.cells.size() == 1 && state.cells[0].trap_count == 1) {
        row = dram::PhysicalRow{r};
        break;
      }
    }
    double prev = -1.0;
    int changes = 0;
    const int n = 3000;
    for (int i = 0; i < n; ++i) {
      const double s = engine.MinFlipHammerCount(
          0, row, 0xFF, 0x00, profile.t_ras, 50.0, encoding,
          static_cast<Tick>(i) * dt);
      if (prev >= 0.0 && s != prev) {
        ++changes;
      }
      prev = s;
    }
    return static_cast<double>(changes) / n;
  };

  const double fast_sampling = change_rate(100 * units::kMicrosecond);
  const double slow_sampling = change_rate(10 * units::kSecond);
  EXPECT_LT(fast_sampling, slow_sampling);
}

TEST(TrapDynamicsTest, IntraRowThresholdsCluster) {
  FaultProfile profile = NoiseOnlyProfile();
  profile.weak_cells_mean = 8.0;
  TrapFaultEngine engine(profile, 5, SmallOrg());

  // Within a row, cell thresholds share the row factor: their spread
  // is much smaller than the spread across rows.
  std::vector<double> row_means;
  double intra_cv_sum = 0.0;
  int rows_used = 0;
  for (dram::RowAddr r = 1; r < 400 && rows_used < 50; ++r) {
    const auto& state = engine.RowStateOf(0, dram::PhysicalRow{r});
    if (state.cells.size() < 4) {
      continue;
    }
    double sum = 0.0;
    double sq = 0.0;
    for (const auto& cell : state.cells) {
      sum += cell.threshold;
      sq += cell.threshold * cell.threshold;
    }
    const double n = static_cast<double>(state.cells.size());
    const double mean = sum / n;
    const double var = std::max(0.0, sq / n - mean * mean);
    intra_cv_sum += std::sqrt(var) / mean;
    row_means.push_back(mean);
    ++rows_used;
  }
  ASSERT_GE(rows_used, 20);
  const double intra_cv = intra_cv_sum / rows_used;

  double sum = 0.0;
  double sq = 0.0;
  for (const double m : row_means) {
    sum += m;
    sq += m * m;
  }
  const double n = static_cast<double>(row_means.size());
  const double across_cv =
      std::sqrt(std::max(0.0, sq / n - (sum / n) * (sum / n))) /
      (sum / n);
  EXPECT_LT(intra_cv, across_cv)
      << "row-level process variation must dominate";
}

TEST(TrapDynamicsTest, HigherTemperatureAcceleratesTraps) {
  FaultProfile profile = NoiseOnlyProfile();
  profile.measurement_noise_sigma = 0.0;
  profile.fast_trap_mean = 2.0;
  profile.fast_rate_lo_hz = 5.0;
  profile.fast_rate_hi_hz = 10.0;
  profile.trap_rate_q10 = 2.0;

  auto change_rate = [&](Celsius temp) {
    TrapFaultEngine engine(profile, 7, SmallOrg());
    const dram::CellEncodingLayout encoding(1, 0.0);
    dram::PhysicalRow row{0};
    for (dram::RowAddr r = 1; r < 1000; ++r) {
      const auto& state = engine.RowStateOf(0, dram::PhysicalRow{r});
      if (state.cells.size() == 1 && state.cells[0].trap_count > 0) {
        row = dram::PhysicalRow{r};
        break;
      }
    }
    double prev = -1.0;
    int changes = 0;
    const int n = 4000;
    const Tick dt = 20 * units::kMillisecond;
    for (int i = 0; i < n; ++i) {
      const double s = engine.MinFlipHammerCount(
          0, row, 0xFF, 0x00, profile.t_ras, temp, encoding,
          static_cast<Tick>(i) * dt);
      if (prev >= 0.0 && s != prev) {
        ++changes;
      }
      prev = s;
    }
    return static_cast<double>(changes) / n;
  };

  EXPECT_LT(change_rate(50.0), change_rate(80.0));
}

TEST(TrapDynamicsTest, PerCellFlipPointsCoverAllCells) {
  FaultProfile profile = NoiseOnlyProfile();
  TrapFaultEngine engine(profile, 9, SmallOrg());
  const dram::CellEncodingLayout encoding(1, 0.0);
  for (dram::RowAddr r = 1; r < 200; ++r) {
    const dram::PhysicalRow row{r};
    const std::size_t cells = engine.RowStateOf(0, row).cells.size();
    const auto points = engine.PerCellFlipHammerCounts(
        0, row, 0xFF, 0x00, profile.t_ras, 50.0, encoding, 0);
    EXPECT_EQ(points.size(), cells);
    std::set<std::uint32_t> bits;
    for (const auto& point : points) {
      bits.insert(point.bit_index);
    }
    EXPECT_EQ(bits.size(), points.size()) << "bit indices unique";
  }
}

}  // namespace
}  // namespace vrddram::vrd
