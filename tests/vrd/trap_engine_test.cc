#include "vrd/trap_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dram/cell_encoding.h"
#include "dram/organization.h"

namespace vrddram::vrd {
namespace {

FaultProfile TestProfile() {
  FaultProfile profile;
  profile.median_rdt = 10000.0;
  profile.sigma_rdt = 0.3;
  profile.weak_cells_mean = 6.0;
  profile.k_press = 1.0;
  profile.t_ras = 35 * units::kNanosecond;
  profile.measurement_noise_sigma = 0.0;  // deterministic for tests
  profile.fast_trap_mean = 0.0;           // no temporal variation
  profile.rare_trap_prob = 0.0;
  return profile;
}

dram::Organization SmallOrg() {
  dram::Organization org;
  org.num_banks = 2;
  org.rows_per_bank = 256;
  org.row_bytes = 1024;
  return org;
}

class TrapEngineTest : public ::testing::Test {
 protected:
  TrapEngineTest()
      : engine_(TestProfile(), /*seed=*/123, SmallOrg()),
        encoding_(/*seed=*/7, /*anti_fraction=*/0.0) {}

  /// A physical row with at least one weak cell (searching upward).
  dram::PhysicalRow WeakRow(TrapFaultEngine& engine) {
    for (dram::RowAddr r = 1; r < 255; ++r) {
      if (!engine.RowStateOf(0, dram::PhysicalRow{r}).cells.empty()) {
        return dram::PhysicalRow{r};
      }
    }
    ADD_FAILURE() << "no weak row";
    return dram::PhysicalRow{1};
  }

  TrapFaultEngine engine_;
  dram::CellEncodingLayout encoding_;  // all true cells
};

TEST_F(TrapEngineTest, RowStateDeterministicAcrossInstances) {
  TrapFaultEngine other(TestProfile(), /*seed=*/123, SmallOrg());
  const auto& a = engine_.RowStateOf(0, dram::PhysicalRow{10});
  const auto& b = other.RowStateOf(0, dram::PhysicalRow{10});
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].bit_index, b.cells[i].bit_index);
    EXPECT_DOUBLE_EQ(a.cells[i].threshold, b.cells[i].threshold);
  }
}

TEST_F(TrapEngineTest, DifferentSeedsDifferentPopulations) {
  TrapFaultEngine other(TestProfile(), /*seed=*/124, SmallOrg());
  int differing = 0;
  for (dram::RowAddr r = 0; r < 32; ++r) {
    const auto& a = engine_.RowStateOf(0, dram::PhysicalRow{r});
    const auto& b = other.RowStateOf(0, dram::PhysicalRow{r});
    if (a.cells.size() != b.cells.size()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST_F(TrapEngineTest, NoFlipsWithoutDose) {
  const dram::PhysicalRow row = WeakRow(engine_);
  const std::vector<std::uint8_t> data(1024, 0xFF);
  dram::VictimContext ctx;
  ctx.bank = 0;
  ctx.row = row;
  ctx.data = data;
  ctx.encoding = &encoding_;
  ctx.now = 0;
  EXPECT_TRUE(engine_.EvaluateToVector(ctx).empty());
}

TEST_F(TrapEngineTest, EnoughHammersFlipAndRestoreClears) {
  const dram::PhysicalRow row = WeakRow(engine_);
  const std::vector<std::uint8_t> victim_data(1024, 0xFF);
  const std::vector<std::uint8_t> aggr_data(1024, 0x00);
  const Tick t_ras = TestProfile().t_ras;

  engine_.OnActivations(0, dram::PhysicalRow{row.value - 1}, 200000,
                        t_ras, 1000, 50.0, aggr_data);
  engine_.OnActivations(0, dram::PhysicalRow{row.value + 1}, 200000,
                        t_ras, 1000, 50.0, aggr_data);

  dram::VictimContext ctx;
  ctx.bank = 0;
  ctx.row = row;
  ctx.data = victim_data;
  ctx.encoding = &encoding_;
  ctx.now = 1000;
  EXPECT_FALSE(engine_.EvaluateToVector(ctx).empty());

  engine_.OnRestore(0, row, 2000);
  ctx.now = 2000;
  EXPECT_TRUE(engine_.EvaluateToVector(ctx).empty());
}

TEST_F(TrapEngineTest, AnalyticThresholdMatchesDoseEvaluation) {
  const dram::PhysicalRow row = WeakRow(engine_);
  const std::uint8_t victim_byte = 0xFF;
  const std::uint8_t aggr_byte = 0x00;
  const Tick t_ras = TestProfile().t_ras;
  const double hc = engine_.MinFlipHammerCount(
      0, row, victim_byte, aggr_byte, t_ras, 50.0, encoding_, 0);
  ASSERT_GT(hc, 0.0);

  const std::vector<std::uint8_t> victim_data(1024, victim_byte);
  const std::vector<std::uint8_t> aggr_data(1024, aggr_byte);
  auto hammer_and_check = [&](std::uint64_t count) {
    TrapFaultEngine fresh(TestProfile(), /*seed=*/123, SmallOrg());
    fresh.OnActivations(0, dram::PhysicalRow{row.value - 1}, count,
                        t_ras, 0, 50.0, aggr_data);
    fresh.OnActivations(0, dram::PhysicalRow{row.value + 1}, count,
                        t_ras, 0, 50.0, aggr_data);
    dram::VictimContext ctx;
    ctx.bank = 0;
    ctx.row = row;
    ctx.data = victim_data;
    ctx.encoding = &encoding_;
    ctx.now = 0;
    return !fresh.EvaluateToVector(ctx).empty();
  };

  EXPECT_FALSE(hammer_and_check(static_cast<std::uint64_t>(hc * 0.98)));
  EXPECT_TRUE(hammer_and_check(static_cast<std::uint64_t>(hc * 1.02)));
}

TEST_F(TrapEngineTest, RowPressLowersThreshold) {
  const dram::PhysicalRow row = WeakRow(engine_);
  const Tick t_ras = TestProfile().t_ras;
  const Tick t_refi = 7800 * units::kNanosecond;
  const double hc_fast = engine_.MinFlipHammerCount(
      0, row, 0xFF, 0x00, t_ras, 50.0, encoding_, 0);
  const double hc_press = engine_.MinFlipHammerCount(
      0, row, 0xFF, 0x00, t_refi, 50.0, encoding_, 0);
  ASSERT_GT(hc_fast, 0.0);
  ASSERT_GT(hc_press, 0.0);
  EXPECT_LT(hc_press, hc_fast / 2.0)
      << "keeping the aggressor open must amplify disturbance";
}

TEST_F(TrapEngineTest, DischargedVictimCellsAreHarderToFlip) {
  const dram::PhysicalRow row = WeakRow(engine_);
  const Tick t_ras = TestProfile().t_ras;
  const double hc_charged = engine_.MinFlipHammerCount(
      0, row, 0xFF, 0x00, t_ras, 50.0, encoding_, 0);
  const double hc_discharged = engine_.MinFlipHammerCount(
      0, row, 0x00, 0xFF, t_ras, 50.0, encoding_, 0);
  ASSERT_GT(hc_charged, 0.0);
  ASSERT_GT(hc_discharged, 0.0);
  EXPECT_GT(hc_discharged, hc_charged);
}

TEST_F(TrapEngineTest, DistanceTwoCouplingIsMuchWeaker) {
  const dram::PhysicalRow row = WeakRow(engine_);
  const Tick t_ras = TestProfile().t_ras;
  const std::vector<std::uint8_t> aggr_data(1024, 0x00);
  const std::vector<std::uint8_t> victim_data(1024, 0xFF);
  const double hc = engine_.MinFlipHammerCount(
      0, row, 0xFF, 0x00, t_ras, 50.0, encoding_, 0);

  TrapFaultEngine fresh(TestProfile(), /*seed=*/123, SmallOrg());
  const auto count = static_cast<std::uint64_t>(hc * 2.0);
  fresh.OnActivations(0, dram::PhysicalRow{row.value - 2}, count, t_ras,
                      0, 50.0, aggr_data);
  fresh.OnActivations(0, dram::PhysicalRow{row.value + 2}, count, t_ras,
                      0, 50.0, aggr_data);
  dram::VictimContext ctx;
  ctx.bank = 0;
  ctx.row = row;
  ctx.data = victim_data;
  ctx.encoding = &encoding_;
  ctx.now = 0;
  EXPECT_TRUE(fresh.EvaluateToVector(ctx).empty());
}

TEST_F(TrapEngineTest, DeterministicProfileYieldsConstantSamples) {
  const dram::PhysicalRow row = WeakRow(engine_);
  const Tick t_ras = TestProfile().t_ras;
  const double first = engine_.MinFlipHammerCount(
      0, row, 0xFF, 0x00, t_ras, 50.0, encoding_, 0);
  for (int i = 1; i <= 5; ++i) {
    EXPECT_DOUBLE_EQ(engine_.MinFlipHammerCount(0, row, 0xFF, 0x00,
                                                t_ras, 50.0, encoding_,
                                                i * units::kSecond),
                     first);
  }
}

TEST(TrapEngineVrdTest, TrapsCreateTemporalVariation) {
  FaultProfile profile = TestProfile();
  profile.fast_trap_mean = 3.0;
  profile.fast_weight_med = 0.02;
  TrapFaultEngine engine(profile, /*seed=*/5, SmallOrg());
  const dram::CellEncodingLayout encoding(7, 0.0);

  dram::PhysicalRow row{0};
  bool found = false;
  for (dram::RowAddr r = 1; r < 255 && !found; ++r) {
    for (const auto& cell :
         engine.RowStateOf(0, dram::PhysicalRow{r}).cells) {
      if (cell.trap_count > 0) {
        row = dram::PhysicalRow{r};
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found);

  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) {
    samples.push_back(engine.MinFlipHammerCount(
        0, row, 0xFF, 0x00, profile.t_ras, 50.0, encoding,
        static_cast<Tick>(i) * 100 * units::kMillisecond));
  }
  const double min = *std::min_element(samples.begin(), samples.end());
  const double max = *std::max_element(samples.begin(), samples.end());
  EXPECT_GT(max, min) << "trap dynamics must vary the threshold";
}

TEST(TrapEngineVrdTest, MeasurementNoiseCreatesVariation) {
  FaultProfile profile = TestProfile();
  profile.measurement_noise_sigma = 0.02;
  TrapFaultEngine engine(profile, /*seed=*/6, SmallOrg());
  const dram::CellEncodingLayout encoding(7, 0.0);
  dram::PhysicalRow row{0};
  for (dram::RowAddr r = 1; r < 255; ++r) {
    if (!engine.RowStateOf(0, dram::PhysicalRow{r}).cells.empty()) {
      row = dram::PhysicalRow{r};
      break;
    }
  }
  ASSERT_GT(row.value, 0u);
  std::vector<double> samples;
  for (int i = 0; i < 100; ++i) {
    samples.push_back(engine.MinFlipHammerCount(
        0, row, 0xFF, 0x00, profile.t_ras, 50.0, encoding, i));
  }
  EXPECT_GT(*std::max_element(samples.begin(), samples.end()),
            *std::min_element(samples.begin(), samples.end()));
}

TEST(TrapEngineAuxTest, SamplePoissonMatchesMean) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(SamplePoisson(rng, 3.0));
  }
  EXPECT_NEAR(sum / n, 3.0, 0.05);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SamplePoisson(rng, 0.0), 0u);
  }
}

TEST(TrapEngineAuxTest, PressFactorAnchoredAtTras) {
  FaultProfile profile;
  profile.k_press = 2.0;
  profile.t_ras = 32 * units::kNanosecond;
  EXPECT_DOUBLE_EQ(profile.PressFactor(profile.t_ras), 1.0);
  EXPECT_GT(profile.PressFactor(7800 * units::kNanosecond), 1.0);
  EXPECT_GT(profile.PressFactor(70200 * units::kNanosecond),
            profile.PressFactor(7800 * units::kNanosecond));
}

}  // namespace
}  // namespace vrddram::vrd
