#include "vrd/chip_catalog.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"

namespace vrddram::vrd {
namespace {

TEST(ChipCatalogTest, PopulationMatchesTable1) {
  EXPECT_EQ(AllDeviceNames().size(), 25u);
  EXPECT_EQ(Ddr4ModuleNames().size(), 21u);
  EXPECT_EQ(Hbm2ChipNames().size(), 4u);
  std::set<std::string> names(AllDeviceNames().begin(),
                              AllDeviceNames().end());
  for (const char* expected :
       {"H0", "H6", "M0", "M6", "S0", "S6", "Chip0", "Chip3"}) {
    EXPECT_TRUE(names.contains(expected)) << expected;
  }
}

TEST(ChipCatalogTest, UnknownNameThrows) {
  EXPECT_THROW(MakeTestedChip("Z9"), FatalError);
}

TEST(ChipCatalogTest, Table1Attributes) {
  const TestedChip h1 = MakeTestedChip("H1");
  EXPECT_EQ(h1.spec.mfr, Manufacturer::kMfrH);
  EXPECT_EQ(h1.spec.density_gbit, 16u);
  EXPECT_EQ(h1.spec.die_rev, 'C');
  EXPECT_EQ(h1.spec.dq_bits, 8u);
  EXPECT_EQ(h1.spec.date_code, "36-21");
  EXPECT_EQ(h1.spec.standard, dram::Standard::kDdr4);

  const TestedChip m0 = MakeTestedChip("M0");
  EXPECT_EQ(m0.spec.mfr, Manufacturer::kMfrM);
  EXPECT_EQ(m0.spec.dq_bits, 16u);
  EXPECT_EQ(m0.spec.chips_per_rank, 4u);

  const TestedChip hbm = MakeTestedChip("Chip2");
  EXPECT_EQ(hbm.spec.standard, dram::Standard::kHbm2);
  EXPECT_TRUE(hbm.device.has_on_die_ecc);
  EXPECT_FALSE(hbm.device.has_trr);
}

TEST(ChipCatalogTest, TechnologyOrdinalOrdersDensityThenRevision) {
  const TestedChip m0 = MakeTestedChip("M0");  // 16Gb-E
  const TestedChip m1 = MakeTestedChip("M1");  // 16Gb-F
  const TestedChip m3 = MakeTestedChip("M3");  // 8Gb-R
  EXPECT_GT(m1.spec.TechnologyOrdinal(), m0.spec.TechnologyOrdinal());
  EXPECT_GT(m0.spec.TechnologyOrdinal(), m3.spec.TechnologyOrdinal());
}

TEST(ChipCatalogTest, SameNameSameSeedIsDeterministic) {
  const TestedChip a = MakeTestedChip("S3", 2025);
  const TestedChip b = MakeTestedChip("S3", 2025);
  EXPECT_EQ(a.device.seed, b.device.seed);
  EXPECT_EQ(a.fault.median_rdt, b.fault.median_rdt);
  // Different base seed -> a different chip individual.
  const TestedChip c = MakeTestedChip("S3", 2026);
  EXPECT_NE(a.device.seed, c.device.seed);
}

TEST(ChipCatalogTest, BuildDeviceAttachesTrapEngine) {
  auto device = BuildDevice("H3");
  auto* engine = dynamic_cast<TrapFaultEngine*>(&device->model());
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(device->name(), "H3");
  EXPECT_EQ(device->org().rows_per_bank, 65536u);
}

TEST(ChipCatalogTest, M0AntiCellFractionCalibrated) {
  // §5.6: 20 of 50 sampled M0 rows were anti-cell rows.
  const TestedChip m0 = MakeTestedChip("M0");
  EXPECT_NEAR(m0.device.anti_cell_fraction, 0.4, 1e-9);
}

TEST(ChipCatalogTest, MedianRdtCalibration) {
  // The catalog's median cell thresholds track Table 7's minimum
  // observed RDT ordering: HBM chips weakest-by-press, M modules have
  // the lowest RowHammer thresholds.
  const TestedChip m4 = MakeTestedChip("M4");
  const TestedChip s1 = MakeTestedChip("S1");
  const TestedChip chip0 = MakeTestedChip("Chip0");
  EXPECT_LT(m4.fault.median_rdt, s1.fault.median_rdt);
  EXPECT_GT(chip0.fault.median_rdt, m4.fault.median_rdt);
  // HBM2 chips have far stronger RowPress sensitivity (Table 7).
  EXPECT_GT(chip0.fault.k_press, 5.0 * m4.fault.k_press);
}

TEST(ChipCatalogTest, OnlyChip1IsBimodal) {
  for (const std::string& name : AllDeviceNames()) {
    const TestedChip chip = MakeTestedChip(name);
    if (name == "Chip1") {
      EXPECT_GT(chip.fault.bimodal_trap_prob, 0.0);
    } else {
      EXPECT_EQ(chip.fault.bimodal_trap_prob, 0.0);
    }
  }
}

TEST(ChipCatalogTest, ManufacturerNames) {
  EXPECT_EQ(ToString(Manufacturer::kMfrH), "Mfr. H");
  EXPECT_EQ(ToString(Manufacturer::kMfrM), "Mfr. M");
  EXPECT_EQ(ToString(Manufacturer::kMfrS), "Mfr. S");
}

}  // namespace
}  // namespace vrddram::vrd

namespace vrddram::vrd {
namespace {

TEST(FutureDdr5Test, NotPartOfTheTable1Population) {
  EXPECT_THROW(MakeTestedChip("DDR5-FUT"), FatalError);
  EXPECT_EQ(AllDeviceNames().size(), 25u);
}

TEST(FutureDdr5Test, PracCapableDdr5Geometry) {
  const TestedChip chip = MakeFutureDdr5Chip();
  EXPECT_EQ(chip.spec.standard, dram::Standard::kDdr5);
  EXPECT_TRUE(chip.device.has_prac);
  EXPECT_FALSE(chip.device.has_trr);
  EXPECT_EQ(chip.device.org.num_banks, 32u);
  EXPECT_EQ(chip.device.org.rows_per_bank, 65536u);
}

TEST(FutureDdr5Test, NearFutureRdtRegime) {
  // Weak rows sit in the ~1024-threshold regime §6.3 evaluates.
  auto device = BuildFutureDdr5Device();
  auto* engine = dynamic_cast<TrapFaultEngine*>(&device->model());
  ASSERT_NE(engine, nullptr);
  double min_rdt = 1e18;
  for (dram::RowAddr row = 1; row < 2048; ++row) {
    const double rdt = engine->MinFlipHammerCount(
        0, device->mapper().ToPhysical(row), 0x55, 0xAA,
        device->timing().tRAS, 50.0, device->encoding(), 0);
    if (rdt > 0.0) {
      min_rdt = std::min(min_rdt, rdt);
    }
  }
  EXPECT_LT(min_rdt, 4096.0);
  EXPECT_GT(min_rdt, 128.0);
}

TEST(FutureDdr5Test, DevicePracProtectsAtGuardbandedThreshold) {
  auto device = BuildFutureDdr5Device();
  auto* engine = dynamic_cast<TrapFaultEngine*>(&device->model());
  // A vulnerable victim and its deterministic-ish threshold scale.
  dram::RowAddr victim = 0;
  double rdt = -1.0;
  for (dram::RowAddr row = 2; row < 2048; ++row) {
    const auto phys = device->mapper().ToPhysical(row);
    if (phys.value < 2 || phys.value > 2050) {
      continue;
    }
    rdt = engine->MinFlipHammerCount(0, phys, 0x55, 0xAA,
                                     device->timing().tRAS, 50.0,
                                     device->encoding(), 0);
    if (rdt > 0.0 && rdt < 6000.0) {
      victim = row;
      break;
    }
  }
  ASSERT_GT(victim, 0u);

  device->SetPracThreshold(static_cast<std::uint64_t>(rdt * 0.4));
  device->BulkInitializeRow(0, victim, 0x55);
  const auto phys = device->mapper().ToPhysical(victim);
  for (const std::int64_t d : {-1, 1}) {
    device->BulkInitializeRow(
        0,
        device->mapper().ToLogical(dram::PhysicalRow{
            static_cast<dram::RowAddr>(phys.value + d)}),
        0xAA);
  }
  const auto chunk = static_cast<std::uint64_t>(rdt * 0.2);
  for (int i = 0; i < 20; ++i) {
    device->HammerDoubleSided(0, victim, chunk, device->timing().tRAS);
    if (device->AlertPending()) {
      device->ServiceAlert();
    }
  }
  device->Activate(0, victim);
  const auto data = device->ReadRow(0, victim);
  device->Precharge(0);
  for (const std::uint8_t byte : data) {
    EXPECT_EQ(byte, 0x55);
  }
}

}  // namespace
}  // namespace vrddram::vrd
