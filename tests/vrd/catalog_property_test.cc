// Parameterized property tests across the full catalog: every device
// instantiates, finds a victim per Alg. 1, exhibits VRD, and stays
// deterministic under its seed.
#include <gtest/gtest.h>

#include "core/rdt_profiler.h"
#include "core/series_analysis.h"
#include "vrd/chip_catalog.h"

namespace vrddram::vrd {
namespace {

class CatalogDeviceTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(CatalogDeviceTest, InstantiatesWithSaneGeometry) {
  const TestedChip chip = MakeTestedChip(GetParam());
  EXPECT_GT(chip.device.org.rows_per_bank, 1024u);
  EXPECT_GE(chip.device.org.num_banks, 8u);
  EXPECT_GT(chip.fault.median_rdt, 1000.0);
  EXPECT_GT(chip.fault.k_press, 0.0);
  // The standard determines the defensive hardware.
  if (chip.spec.standard == dram::Standard::kHbm2) {
    EXPECT_TRUE(chip.device.has_on_die_ecc);
  } else {
    EXPECT_TRUE(chip.device.has_trr);
  }
}

TEST_P(CatalogDeviceTest, FindsAVictimAndExhibitsVrd) {
  auto device = BuildDevice(GetParam(), 2025);
  if (device->config().has_on_die_ecc) {
    device->SetOnDieEccEnabled(false);
  }
  core::ProfilerConfig pc;
  core::RdtProfiler profiler(*device, pc);
  const auto victim = profiler.FindVictim(1, 8192);
  ASSERT_TRUE(victim.has_value()) << GetParam();
  EXPECT_LT(victim->rdt_guess, 40000u);

  const auto series =
      profiler.MeasureSeries(victim->row, victim->rdt_guess, 300);
  const core::SeriesAnalysis a = core::AnalyzeSeries(series);
  EXPECT_GT(a.unique_values, 1u) << GetParam() << " shows no VRD";
  EXPECT_GT(a.cv, 0.0);
  EXPECT_LT(a.max_over_min, 10.0) << "implausible spread";
}

TEST_P(CatalogDeviceTest, DeterministicUnderSeed) {
  auto a = BuildDevice(GetParam(), 7);
  auto b = BuildDevice(GetParam(), 7);
  auto* ea = dynamic_cast<TrapFaultEngine*>(&a->model());
  auto* eb = dynamic_cast<TrapFaultEngine*>(&b->model());
  for (dram::RowAddr row = 1; row < 64; ++row) {
    const double ra = ea->MinFlipHammerCount(
        0, dram::PhysicalRow{row}, 0x55, 0xAA, a->timing().tRAS, 50.0,
        a->encoding(), 0);
    const double rb = eb->MinFlipHammerCount(
        0, dram::PhysicalRow{row}, 0x55, 0xAA, b->timing().tRAS, 50.0,
        b->encoding(), 0);
    EXPECT_DOUBLE_EQ(ra, rb);
  }
}

TEST_P(CatalogDeviceTest, RowPressStrictlyAmplifies) {
  const TestedChip chip = MakeTestedChip(GetParam());
  const Tick t_ras = chip.device.timing.tRAS;
  const Tick t_refi = chip.device.timing.tREFI;
  EXPECT_GT(chip.fault.PressFactor(t_refi),
            chip.fault.PressFactor(t_ras));
  EXPECT_DOUBLE_EQ(chip.fault.PressFactor(t_ras), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllDevices, CatalogDeviceTest,
    ::testing::ValuesIn(AllDeviceNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace vrddram::vrd
