/**
 * Schema-driven Flags, the experiment registry, and the shared
 * manufacturer grouping helper.
 */
#include "common/experiment.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vrddram::bench {
namespace {

const std::vector<FlagSpec> kSchema = {
    {"rows", "6", "victim rows per device"},
    {"ber", "0.25", "bit error rate"},
    {"device", "M1", "device under test"},
    {"rig", "true", "use the thermal rig"},
};

TEST(FlagsSchemaTest, GettersFallBackToSchemaDefaults) {
  const Flags flags({}, kSchema);
  EXPECT_EQ(flags.GetUint("rows"), 6u);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ber"), 0.25);
  EXPECT_EQ(flags.GetString("device"), "M1");
  EXPECT_TRUE(flags.GetBool("rig"));
}

TEST(FlagsSchemaTest, ArgumentsOverrideDefaults) {
  const Flags flags({"--rows=42", "--rig=false"}, kSchema);
  EXPECT_EQ(flags.GetUint("rows"), 42u);
  EXPECT_FALSE(flags.GetBool("rig"));
  EXPECT_EQ(flags.GetString("device"), "M1");
}

TEST(FlagsSchemaTest, RejectsFlagsOutsideTheSchema) {
  EXPECT_THROW(Flags({"--bogus=1"}, kSchema), FatalError);
  const Flags flags({}, kSchema);
  EXPECT_THROW(flags.GetUint("not_declared"), FatalError);
}

TEST(FlagsSchemaTest, DescribeListsEveryFlagWithDefaultAndHelp) {
  const std::string text = Flags::Describe(kSchema);
  EXPECT_NE(text.find("flags:"), std::string::npos);
  EXPECT_NE(text.find("--rows=6"), std::string::npos);
  EXPECT_NE(text.find("victim rows per device"), std::string::npos);
  EXPECT_NE(text.find("--rig=true"), std::string::npos);
  const Flags flags({}, kSchema);
  EXPECT_EQ(flags.Describe(), text);
  EXPECT_EQ(Flags::Describe({}), "");
}

TEST(ExperimentRegistryTest, FindsEveryPortedExperiment) {
  const auto& registry = ExperimentRegistry::Instance();
  for (const char* name :
       {"fig01_rdt_series", "fig10_data_pattern", "fig11_taggon",
        "table01_population", "table07_module_summary",
        "appendix_test_time", "future_ddr5"}) {
    const ExperimentSpec* spec = registry.Find(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_EQ(spec->name, name);
    EXPECT_TRUE(spec->analyze) << name;
  }
  EXPECT_EQ(registry.Find("no_such_experiment"), nullptr);
}

TEST(ExperimentRegistryTest, AllIsSortedAndComplete) {
  const auto all = ExperimentRegistry::Instance().All();
  EXPECT_GE(all.size(), 24u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1]->name, all[i]->name);
  }
}

TEST(ExperimentRegistryTest, RejectsDuplicateAndMalformedSpecs) {
  auto& registry = ExperimentRegistry::Instance();
  ExperimentSpec duplicate;
  duplicate.name = "fig10_data_pattern";
  duplicate.analyze = [](const core::CampaignResult&, Report*) {};
  EXPECT_THROW(registry.Register(duplicate), FatalError);

  ExperimentSpec unnamed;
  unnamed.analyze = [](const core::CampaignResult&, Report*) {};
  EXPECT_THROW(registry.Register(unnamed), FatalError);

  ExperimentSpec no_analyze;
  no_analyze.name = "zz_no_analyze";
  EXPECT_THROW(registry.Register(no_analyze), FatalError);
}

TEST(GroupNameTest, Hbm2ChipsShareOneGroup) {
  core::SeriesRecord record;
  record.standard = dram::Standard::kHbm2;
  record.mfr = vrd::Manufacturer::kMfrS;
  EXPECT_EQ(ManufacturerGroupName(record), "Mfr. S HBM2");
}

TEST(GroupNameTest, Ddr4ModulesGroupByManufacturer) {
  core::SeriesRecord record;
  record.standard = dram::Standard::kDdr4;
  record.mfr = vrd::Manufacturer::kMfrM;
  EXPECT_EQ(ManufacturerGroupName(record), ToString(record.mfr));
  record.mfr = vrd::Manufacturer::kMfrH;
  EXPECT_EQ(ManufacturerGroupName(record), "Mfr. H");
}

}  // namespace
}  // namespace vrddram::bench
