/**
 * In-process tests of the vrdrepro driver: command dispatch, flag
 * forwarding, and the golden cold/warm campaign-cache property — a
 * warm run must produce byte-identical output with zero campaign
 * executions, at any worker count.
 */
#include "common/driver.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace vrddram::bench {
namespace {

struct DriverRun {
  int exit_code = 0;
  std::string out;
  std::string err;
};

DriverRun Drive(std::vector<std::string> args) {
  std::vector<const char*> argv = {"vrdrepro"};
  for (const std::string& arg : args) {
    argv.push_back(arg.c_str());
  }
  std::ostringstream out;
  std::ostringstream err;
  DriverRun run;
  run.exit_code = RunDriver(static_cast<int>(argv.size()), argv.data(),
                            out, err);
  run.out = out.str();
  run.err = err.str();
  return run;
}

TEST(DriverTest, ListShowsEveryExperiment) {
  const DriverRun run = Drive({"list"});
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("fig01_rdt_series"), std::string::npos);
  EXPECT_NE(run.out.find("table07_module_summary"), std::string::npos);
  EXPECT_NE(run.out.find("future_ddr5"), std::string::npos);
}

TEST(DriverTest, DescribePrintsSchemaAndSmokeLine) {
  const DriverRun run = Drive({"describe", "fig10_data_pattern"});
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("--measurements=1000"), std::string::npos);
  EXPECT_NE(run.out.find("--threads=0"), std::string::npos);
  EXPECT_NE(run.out.find("smoke: --devices=M1,S2"), std::string::npos);
}

TEST(DriverTest, UnknownCommandAndExperimentFail) {
  EXPECT_EQ(Drive({"frobnicate"}).exit_code, 2);
  const DriverRun run = Drive({"run", "no_such_experiment"});
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.err.find("unknown experiment"), std::string::npos);
  EXPECT_NE(run.err.find("fig01_rdt_series"), std::string::npos);
}

TEST(DriverTest, UnknownForwardedFlagAbortsWithTheRealSchema) {
  const DriverRun run =
      Drive({"run", "fig10_data_pattern", "--bogus=1"});
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.err.find("unknown flag --bogus"), std::string::npos);
  EXPECT_NE(run.err.find("--measurements=1000"), std::string::npos);
  EXPECT_NE(run.err.find("victim rows per device"), std::string::npos);
}

TEST(DriverTest, RunRequiresNamesOrAllButNotBoth) {
  EXPECT_EQ(Drive({"run"}).exit_code, 2);
  EXPECT_EQ(Drive({"run", "--all", "fig01_rdt_series"}).exit_code, 2);
}

TEST(DriverTest, WarmCacheRunsAreByteIdenticalAtAnyThreads) {
  const std::string cache_dir =
      (std::filesystem::path(::testing::TempDir()) /
       "vrddram_driver_cache")
          .string();
  std::filesystem::remove_all(cache_dir);
  const std::vector<std::string> base = {
      "run",           "fig10_data_pattern",
      "--smoke",       "--rows=2",
      "--measurements=60", "--iters=100",
      "--cache_dir=" + cache_dir};

  auto with_threads = [&](const std::string& threads) {
    std::vector<std::string> args = base;
    args.push_back("--threads=" + threads);
    return args;
  };

  // Cold at 1 worker; a fresh cache-less run at 8 workers; warm runs
  // at both worker counts.
  const DriverRun cold = Drive(with_threads("1"));
  ASSERT_EQ(cold.exit_code, 0) << cold.err;
  EXPECT_NE(cold.err.find("cache hits=0 misses=1 stores=1"),
            std::string::npos)
      << cold.err;

  std::vector<std::string> fresh_args = with_threads("8");
  fresh_args.push_back("--no-cache");
  const DriverRun fresh = Drive(fresh_args);
  ASSERT_EQ(fresh.exit_code, 0) << fresh.err;
  EXPECT_EQ(fresh.err.find("campaign-cache"), std::string::npos);

  const DriverRun warm1 = Drive(with_threads("1"));
  const DriverRun warm8 = Drive(with_threads("8"));
  ASSERT_EQ(warm1.exit_code, 0) << warm1.err;
  ASSERT_EQ(warm8.exit_code, 0) << warm8.err;

  EXPECT_EQ(cold.out, fresh.out);
  EXPECT_EQ(cold.out, warm1.out);
  EXPECT_EQ(cold.out, warm8.out);
  EXPECT_NE(warm1.err.find("cache hits=1 misses=0 stores=0"),
            std::string::npos)
      << warm1.err;
  EXPECT_NE(warm8.err.find("cache hits=1 misses=0 stores=0"),
            std::string::npos)
      << warm8.err;
  std::filesystem::remove_all(cache_dir);
}

TEST(DriverTest, OutDirWritesOneReportPerExperiment) {
  const std::string out_dir =
      (std::filesystem::path(::testing::TempDir()) /
       "vrddram_driver_out")
          .string();
  std::filesystem::remove_all(out_dir);
  const DriverRun direct = Drive({"run", "table01_population"});
  ASSERT_EQ(direct.exit_code, 0) << direct.err;

  const DriverRun filed = Drive(
      {"run", "table01_population", "--out_dir=" + out_dir});
  ASSERT_EQ(filed.exit_code, 0) << filed.err;
  EXPECT_TRUE(filed.out.empty());

  const std::string path =
      (std::filesystem::path(out_dir) / "table01_population.txt")
          .string();
  std::ifstream file(path);
  ASSERT_TRUE(file) << path;
  std::stringstream contents;
  contents << file.rdbuf();
  EXPECT_EQ(contents.str(), direct.out);
  std::filesystem::remove_all(out_dir);
}

}  // namespace
}  // namespace vrddram::bench
