#include "common/bench_util.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vrddram::bench {
namespace {

Flags MakeFlags(std::vector<std::string> args) {
  std::vector<char*> argv = {const_cast<char*>("bench")};
  for (std::string& arg : args) {
    argv.push_back(arg.data());
  }
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const Flags flags = MakeFlags({});
  EXPECT_EQ(flags.GetUint("rows", 7), 7u);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ber", 1.5), 1.5);
  EXPECT_EQ(flags.GetString("device", "H1"), "H1");
  EXPECT_TRUE(flags.GetBool("rig", true));
}

TEST(FlagsTest, ParsesKeyValuePairs) {
  const Flags flags = MakeFlags(
      {"--rows=42", "--ber=0.25", "--device=M3", "--rig=false"});
  EXPECT_EQ(flags.GetUint("rows", 0), 42u);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ber", 0.0), 0.25);
  EXPECT_EQ(flags.GetString("device", ""), "M3");
  EXPECT_FALSE(flags.GetBool("rig", true));
}

TEST(FlagsTest, BareFlagIsTrue) {
  const Flags flags = MakeFlags({"--full"});
  EXPECT_TRUE(flags.GetBool("full", false));
}

TEST(DevicesTest, ResolvesAliases) {
  EXPECT_EQ(ResolveDevices("all").size(), 25u);
  EXPECT_EQ(ResolveDevices("ddr4").size(), 21u);
  EXPECT_EQ(ResolveDevices("hbm2").size(), 4u);
}

TEST(DevicesTest, ResolvesCommaSeparatedList) {
  const auto devices = ResolveDevices("H1,M2,Chip0");
  ASSERT_EQ(devices.size(), 3u);
  EXPECT_EQ(devices[0], "H1");
  EXPECT_EQ(devices[2], "Chip0");
  EXPECT_THROW(ResolveDevices(""), FatalError);
}

TEST(SingleRowTest, CollectsDeterministicSeries) {
  SingleRowSeries a;
  SingleRowSeries b;
  ASSERT_TRUE(CollectSingleRowSeries("S2", 50, 1, &a));
  ASSERT_TRUE(CollectSingleRowSeries("S2", 50, 1, &b));
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(a.series, b.series);
  EXPECT_EQ(a.series.size(), 50u);
}

TEST(BoxTest, WrapsComputeBoxStats) {
  const stats::BoxStats box = Box({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(box.median, 2.5);
}

}  // namespace
}  // namespace vrddram::bench
