#include "memsim/mitigation.h"

#include <gtest/gtest.h>

#include <bit>

#include "common/error.h"

namespace vrddram::memsim {
namespace {

const dram::TimingParams kTiming = dram::MakeDdr5_8800();

TEST(MitigationTest, FactoryBuildsEveryKind) {
  for (const MitigationKind kind :
       {MitigationKind::kNone, MitigationKind::kGraphene,
        MitigationKind::kPrac, MitigationKind::kPara,
        MitigationKind::kMint}) {
    const auto mitigation = MakeMitigation(kind, 1024, kTiming, 1);
    ASSERT_NE(mitigation, nullptr);
    EXPECT_EQ(mitigation->kind(), kind);
  }
}

TEST(MitigationTest, NoMitigationIsFree) {
  NoMitigation none;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(none.OnActivate(0, 5, i).IsZero());
  }
  EXPECT_EQ(none.preventive_actions(), 0u);
}

TEST(MitigationTest, GrapheneTriggersAtThreshold) {
  const MitigationCosts costs = MitigationCosts::FromTiming(kTiming);
  Graphene graphene(1024, costs);
  const std::uint64_t threshold = graphene.threshold();
  ASSERT_GT(threshold, 0u);

  Tick total_penalty = 0;
  std::uint32_t total_extra_acts = 0;
  for (std::uint64_t i = 0; i < threshold; ++i) {
    const Penalty penalty = graphene.OnActivate(0, 42, 0);
    total_penalty += penalty.bank_busy;
    total_extra_acts += penalty.extra_activations;
  }
  EXPECT_EQ(total_penalty, costs.neighbor_refresh);
  EXPECT_EQ(total_extra_acts, 2u);  // both neighbors refreshed
  EXPECT_EQ(graphene.preventive_actions(), 1u);
  // Counter reset: the next threshold-1 activations are free.
  total_penalty = 0;
  for (std::uint64_t i = 0; i + 1 < threshold; ++i) {
    total_penalty += graphene.OnActivate(0, 42, 0).bank_busy;
  }
  EXPECT_EQ(total_penalty, 0);
}

TEST(MitigationTest, GrapheneTracksPerBank) {
  Graphene graphene(1024, MitigationCosts::FromTiming(kTiming));
  const std::uint64_t threshold = graphene.threshold();
  // Spread activations to the same row id in two banks: each bank has
  // its own counter, so neither reaches the threshold.
  Tick penalty = 0;
  for (std::uint64_t i = 0; i < threshold - 1; ++i) {
    penalty += graphene.OnActivate(0, 7, 0).bank_busy;
    penalty += graphene.OnActivate(1, 7, 0).bank_busy;
  }
  EXPECT_EQ(penalty, 0);
}

TEST(MitigationTest, PracChargesPerActTaxAndBacksOff) {
  const MitigationCosts costs = MitigationCosts::FromTiming(kTiming);
  Prac prac(128, costs);
  const std::uint64_t threshold = prac.threshold();
  Tick bank_total = 0;
  Tick rank_total = 0;
  for (std::uint64_t i = 0; i < threshold; ++i) {
    const Penalty penalty = prac.OnActivate(0, 9, 0);
    bank_total += penalty.bank_busy;
    rank_total += penalty.rank_busy;
  }
  EXPECT_EQ(bank_total, static_cast<Tick>(threshold) * Prac::kPerActTax);
  // The back-off is a rank-wide blackout.
  EXPECT_EQ(rank_total, costs.rfm);
  EXPECT_EQ(prac.preventive_actions(), 1u);
}

TEST(MitigationTest, ParaProbabilityScalesInverselyWithRdt) {
  const MitigationCosts costs = MitigationCosts::FromTiming(kTiming);
  Para high(1024, costs, 1);
  Para low(64, costs, 1);
  EXPECT_LT(high.probability(), low.probability());
  EXPECT_NEAR(high.probability(), 34.5 / 1024.0, 1e-9);
  EXPECT_NEAR(low.probability(), 34.5 / 64.0, 1e-9);
}

TEST(MitigationTest, ParaRefreshRateMatchesProbability) {
  const MitigationCosts costs = MitigationCosts::FromTiming(kTiming);
  Para para(256, costs, 77);
  const int n = 200000;
  int refreshes = 0;
  for (int i = 0; i < n; ++i) {
    if (!para.OnActivate(0, 1, 0).IsZero()) {
      ++refreshes;
    }
  }
  EXPECT_NEAR(static_cast<double>(refreshes) / n, para.probability(),
              0.005);
}

TEST(MitigationTest, MintIntervalIsPowerOfTwo) {
  const MitigationCosts costs = MitigationCosts::FromTiming(kTiming);
  for (const std::uint64_t rdt : {64u, 128u, 1024u, 100000u}) {
    Mint mint(rdt, costs, 1);
    EXPECT_TRUE(std::has_single_bit(mint.rfm_interval())) << rdt;
    // Nearest power of two of rdt/8 (the tracker's window register).
    EXPECT_LE(mint.rfm_interval(),
              2 * std::max<std::uint64_t>(2, rdt / 8));
  }
}

TEST(MitigationTest, MintSmallMarginDoesNotChangeBehaviour) {
  // The paper's footnote 16: MINT's preventive actions do not change
  // when RDT drops from 128 to 115 (the interval register quantizes).
  const MitigationCosts costs = MitigationCosts::FromTiming(kTiming);
  Mint at_128(128, costs, 1);
  Mint at_115(115, costs, 1);
  EXPECT_EQ(at_128.rfm_interval(), at_115.rfm_interval());
  // A 50% margin does change it.
  Mint at_64(64, costs, 1);
  EXPECT_LT(at_64.rfm_interval(), at_128.rfm_interval());
}

TEST(MitigationTest, MintChargesRfmPeriodically) {
  const MitigationCosts costs = MitigationCosts::FromTiming(kTiming);
  Mint mint(1024, costs, 1);
  const std::uint64_t interval = mint.rfm_interval();
  Tick total = 0;
  for (std::uint64_t i = 0; i < interval * 5; ++i) {
    total += mint.OnActivate(0, static_cast<std::uint32_t>(i), 0).bank_busy;
  }
  EXPECT_EQ(total, 5 * costs.rfm);
  EXPECT_EQ(mint.preventive_actions(), 5u);
}

TEST(MitigationTest, TooSmallRdtRejected) {
  const MitigationCosts costs = MitigationCosts::FromTiming(kTiming);
  EXPECT_THROW(Graphene(2, costs), FatalError);
  EXPECT_THROW(Prac(2, costs), FatalError);
  EXPECT_THROW(Para(1, costs, 1), FatalError);
  EXPECT_THROW(Mint(4, costs, 1), FatalError);
}

TEST(MitigationTest, SortedSnapshotsAreKeyOrdered) {
  const MitigationCosts costs = MitigationCosts::FromTiming(kTiming);

  Graphene graphene(1024, costs);
  graphene.OnActivate(3, 90, 0);
  graphene.OnActivate(1, 70, 0);
  graphene.OnActivate(1, 50, 0);
  const auto tables = graphene.SortedTables();
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0].first, 1u);
  EXPECT_EQ(tables[1].first, 3u);
  ASSERT_EQ(tables[0].second.size(), 2u);
  EXPECT_EQ(tables[0].second[0].row, 50u);
  EXPECT_EQ(tables[0].second[1].row, 70u);
  EXPECT_EQ(tables[0].second[0].count, 1u);

  Prac prac(1024, costs);
  prac.OnActivate(2, 9, 0);
  prac.OnActivate(0, 4, 0);
  prac.OnActivate(0, 4, 0);
  const auto counters = prac.SortedCounters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, (std::uint64_t{0} << 32) | 4u);
  EXPECT_EQ(counters[0].second, 2u);
  EXPECT_EQ(counters[1].first, (std::uint64_t{2} << 32) | 9u);

  Mint mint(1024, costs, 1);
  mint.OnActivate(5, 1, 0);
  mint.OnActivate(2, 1, 0);
  mint.OnActivate(2, 2, 0);
  const auto banks = mint.SortedBankCounters();
  ASSERT_EQ(banks.size(), 2u);
  EXPECT_EQ(banks[0].first, 2u);
  EXPECT_EQ(banks[0].second, 2u);
  EXPECT_EQ(banks[1].first, 5u);
  EXPECT_EQ(banks[1].second, 1u);
}

TEST(MitigationTest, Names) {
  EXPECT_EQ(ToString(MitigationKind::kGraphene), "Graphene");
  EXPECT_EQ(ToString(MitigationKind::kPrac), "PRAC");
  EXPECT_EQ(ToString(MitigationKind::kPara), "PARA");
  EXPECT_EQ(ToString(MitigationKind::kMint), "MINT");
  EXPECT_EQ(ToString(MitigationKind::kNone), "None");
}

}  // namespace
}  // namespace vrddram::memsim
