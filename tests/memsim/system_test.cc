#include "memsim/system.h"

#include "common/error.h"

#include <gtest/gtest.h>

namespace vrddram::memsim {
namespace {

SystemConfig FastConfig() {
  SystemConfig config;
  config.requests_per_core = 4000;
  return config;
}

WorkloadMix OneMix() { return MakeHighMemoryIntensityMixes()[0]; }

TEST(SystemTest, BaselineRunCompletesAllRequests) {
  const SystemConfig config = FastConfig();
  const SystemResult result = SimulateMix(OneMix(), config);
  ASSERT_EQ(result.cores.size(), 4u);
  for (const CoreStats& core : result.cores) {
    EXPECT_EQ(core.requests, config.requests_per_core);
    EXPECT_GT(core.finish_time, 0);
    EXPECT_GT(core.Throughput(), 0.0);
  }
  EXPECT_GT(result.makespan, 0);
  EXPECT_GT(result.activations, 0u);
  EXPECT_GT(result.row_hits, 0u);
}

TEST(SystemTest, DeterministicForFixedSeed) {
  const SystemConfig config = FastConfig();
  const SystemResult a = SimulateMix(OneMix(), config);
  const SystemResult b = SimulateMix(OneMix(), config);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.activations, b.activations);
}

TEST(SystemTest, SelfNormalizationIsOne) {
  const SystemResult result = SimulateMix(OneMix(), FastConfig());
  EXPECT_DOUBLE_EQ(NormalizedPerformance(result, result), 1.0);
}

TEST(SystemTest, MitigationsNeverSpeedUpTheSystem) {
  // A conflict-heavy mix: tiny hot sets with no row-buffer locality
  // hammer the same rows, so counter-based mitigations trigger too.
  WorkloadMix mix;
  mix.name = "conflict";
  for (int c = 0; c < 4; ++c) {
    mix.cores.push_back(CoreProfile{"hot", 40.0, 0.0, 0.1, 2});
  }
  SystemConfig config = FastConfig();
  const SystemResult baseline = SimulateMix(mix, config);
  for (const MitigationKind kind :
       {MitigationKind::kGraphene, MitigationKind::kPrac,
        MitigationKind::kPara, MitigationKind::kMint}) {
    config.mitigation = kind;
    config.rdt = 64;
    const SystemResult mitigated = SimulateMix(mix, config);
    EXPECT_LE(NormalizedPerformance(mitigated, baseline), 1.001)
        << ToString(kind);
    EXPECT_GT(mitigated.preventive_actions, 0u) << ToString(kind);
  }
}

TEST(SystemTest, LowerRdtCostsMorePara) {
  SystemConfig config = FastConfig();
  const SystemResult baseline = SimulateMix(OneMix(), config);
  config.mitigation = MitigationKind::kPara;
  config.rdt = 1024;
  const double perf_high =
      NormalizedPerformance(SimulateMix(OneMix(), config), baseline);
  config.rdt = 64;
  const double perf_low =
      NormalizedPerformance(SimulateMix(OneMix(), config), baseline);
  EXPECT_LT(perf_low, perf_high);
}

TEST(SystemTest, MintOverheadLargeAtVeryLowRdt) {
  SystemConfig config = FastConfig();
  const SystemResult baseline = SimulateMix(OneMix(), config);
  config.mitigation = MitigationKind::kMint;
  config.rdt = 64;  // RDT 128 with 50% guardband
  const double perf =
      NormalizedPerformance(SimulateMix(OneMix(), config), baseline);
  EXPECT_LT(perf, 0.85);
}

TEST(SystemTest, GrapheneCheapAtHighRdt) {
  SystemConfig config = FastConfig();
  const SystemResult baseline = SimulateMix(OneMix(), config);
  config.mitigation = MitigationKind::kGraphene;
  config.rdt = 1024;
  const double perf =
      NormalizedPerformance(SimulateMix(OneMix(), config), baseline);
  EXPECT_GT(perf, 0.95);
}

TEST(SystemTest, RefreshCostsThroughput) {
  SystemConfig with_ref = FastConfig();
  SystemConfig without_ref = FastConfig();
  without_ref.refresh_enabled = false;
  const SystemResult ref = SimulateMix(OneMix(), with_ref);
  const SystemResult no_ref = SimulateMix(OneMix(), without_ref);
  EXPECT_GE(ref.makespan, no_ref.makespan);
}

TEST(SystemTest, HighLocalityMixGetsMoreRowHits) {
  WorkloadMix local;
  local.name = "local";
  WorkloadMix random;
  random.name = "random";
  for (int c = 0; c < 4; ++c) {
    local.cores.push_back(CoreProfile{"l", 30.0, 0.95, 0.2, 8});
    random.cores.push_back(CoreProfile{"r", 30.0, 0.05, 0.2, 1024});
  }
  const SystemConfig config = FastConfig();
  const SystemResult local_result = SimulateMix(local, config);
  const SystemResult random_result = SimulateMix(random, config);
  EXPECT_GT(local_result.row_hits, 2 * random_result.row_hits);
}

}  // namespace
}  // namespace vrddram::memsim

namespace vrddram::memsim {
namespace {

TEST(SchedulerTest, FrFcfsImprovesRowHitRate) {
  // A mix with moderate locality: reordering lets hits bypass misses,
  // raising the hit count and throughput.
  WorkloadMix mix;
  mix.name = "reorder";
  for (int c = 0; c < 4; ++c) {
    mix.cores.push_back(CoreProfile{"m", 40.0, 0.6, 0.2, 32, 4});
  }
  SystemConfig in_order;
  in_order.requests_per_core = 6000;
  SystemConfig fr_fcfs = in_order;
  fr_fcfs.scheduler = Scheduler::kFrFcfs;

  const SystemResult base = SimulateMix(mix, in_order);
  const SystemResult reordered = SimulateMix(mix, fr_fcfs);
  EXPECT_GE(reordered.row_hits, base.row_hits);
  // Total work identical.
  EXPECT_EQ(base.cores.size(), reordered.cores.size());
  for (const CoreStats& core : reordered.cores) {
    EXPECT_EQ(core.requests, fr_fcfs.requests_per_core);
  }
}

TEST(SchedulerTest, FrFcfsDeterministic) {
  const auto mix = MakeHighMemoryIntensityMixes()[2];
  SystemConfig config;
  config.requests_per_core = 3000;
  config.scheduler = Scheduler::kFrFcfs;
  const SystemResult a = SimulateMix(mix, config);
  const SystemResult b = SimulateMix(mix, config);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.row_hits, b.row_hits);
}

TEST(SchedulerTest, MitigationOrderingHoldsUnderFrFcfs) {
  const auto mix = MakeHighMemoryIntensityMixes()[0];
  SystemConfig config;
  config.requests_per_core = 4000;
  config.scheduler = Scheduler::kFrFcfs;
  const SystemResult baseline = SimulateMix(mix, config);
  config.rdt = 64;
  config.mitigation = MitigationKind::kPara;
  const double para =
      NormalizedPerformance(SimulateMix(mix, config), baseline);
  config.mitigation = MitigationKind::kGraphene;
  const double graphene =
      NormalizedPerformance(SimulateMix(mix, config), baseline);
  EXPECT_LT(para, graphene)
      << "PARA must cost more than Graphene at low RDT";
}

}  // namespace
}  // namespace vrddram::memsim

namespace vrddram::memsim {
namespace {

TEST(LatencyTest, AverageLatencyTracked) {
  const SystemResult result = SimulateMix(OneMix(), FastConfig());
  EXPECT_EQ(result.total_requests, 4u * 4000u);
  EXPECT_GT(result.AvgLatencyNs(), units::ToNs(
      dram::MakeDdr5_8800().tCL));
  EXPECT_LT(result.AvgLatencyNs(), 10000.0);
}

TEST(LatencyTest, MitigationInflatesLatency) {
  SystemConfig config = FastConfig();
  const double base = SimulateMix(OneMix(), config).AvgLatencyNs();
  config.mitigation = MitigationKind::kPara;
  config.rdt = 64;
  const double mitigated =
      SimulateMix(OneMix(), config).AvgLatencyNs();
  EXPECT_GT(mitigated, base);
}

}  // namespace
}  // namespace vrddram::memsim

namespace vrddram::memsim {
namespace {

TEST(LatencyTest, PercentilesOrdered) {
  const SystemResult result = SimulateMix(OneMix(), FastConfig());
  const double p50 = result.LatencyPercentileNs(50.0);
  const double p99 = result.LatencyPercentileNs(99.0);
  EXPECT_GT(p50, 0.0);
  EXPECT_GE(p99, p50);
  EXPECT_GE(result.LatencyPercentileNs(100.0), p99);
  EXPECT_THROW(result.LatencyPercentileNs(-1.0), vrddram::FatalError);
}

TEST(LatencyTest, MitigationInflatesTail) {
  SystemConfig config = FastConfig();
  const SystemResult base = SimulateMix(OneMix(), config);
  config.mitigation = MitigationKind::kMint;
  config.rdt = 64;
  const SystemResult worst = SimulateMix(OneMix(), config);
  EXPECT_GT(worst.LatencyPercentileNs(99.0),
            base.LatencyPercentileNs(99.0));
}

}  // namespace
}  // namespace vrddram::memsim
