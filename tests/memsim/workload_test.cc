#include "memsim/workload.h"

#include <gtest/gtest.h>

#include <set>

namespace vrddram::memsim {
namespace {

TEST(WorkloadTest, FifteenFourCoreMixes) {
  const auto mixes = MakeHighMemoryIntensityMixes();
  ASSERT_EQ(mixes.size(), 15u);
  for (const WorkloadMix& mix : mixes) {
    EXPECT_EQ(mix.cores.size(), 4u);
    for (const CoreProfile& core : mix.cores) {
      // §6.3: highly memory intensive means LLC MPKI >= 20.
      EXPECT_GE(core.mpki, 20.0) << core.name;
      EXPECT_GE(core.row_locality, 0.0);
      EXPECT_LE(core.row_locality, 1.0);
    }
  }
}

TEST(WorkloadTest, MixesAreDeterministic) {
  const auto a = MakeHighMemoryIntensityMixes(42);
  const auto b = MakeHighMemoryIntensityMixes(42);
  for (std::size_t m = 0; m < a.size(); ++m) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(a[m].cores[c].mpki, b[m].cores[c].mpki);
    }
  }
}

TEST(WorkloadTest, GeneratorIsDeterministic) {
  const CoreProfile profile{"p", 30.0, 0.5, 0.2, 64};
  CoreGenerator a(0, profile, 32, 1024, 7);
  CoreGenerator b(0, profile, 32, 1024, 7);
  for (int i = 0; i < 1000; ++i) {
    const Request ra = a.Next();
    const Request rb = b.Next();
    EXPECT_EQ(ra.bank, rb.bank);
    EXPECT_EQ(ra.row, rb.row);
    EXPECT_EQ(ra.is_write, rb.is_write);
  }
}

TEST(WorkloadTest, AddressesStayInBounds) {
  const CoreProfile profile{"p", 30.0, 0.3, 0.2, 256};
  CoreGenerator gen(1, profile, 8, 128, 9);
  for (int i = 0; i < 5000; ++i) {
    const Request r = gen.Next();
    EXPECT_LT(r.bank, 8u);
    EXPECT_LT(r.row, 128u);
    EXPECT_EQ(r.core, 1u);
  }
}

TEST(WorkloadTest, LocalityControlsRowReuse) {
  const CoreProfile local{"local", 30.0, 0.9, 0.0, 64};
  const CoreProfile random{"random", 30.0, 0.05, 0.0, 64};
  CoreGenerator local_gen(0, local, 32, 65536, 3);
  CoreGenerator random_gen(0, random, 32, 65536, 3);

  auto reuse_rate = [](CoreGenerator& gen) {
    Request prev = gen.Next();
    int same = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      const Request cur = gen.Next();
      if (cur.bank == prev.bank && cur.row == prev.row) {
        ++same;
      }
      prev = cur;
    }
    return static_cast<double>(same) / n;
  };
  EXPECT_GT(reuse_rate(local_gen), 0.8);
  EXPECT_LT(reuse_rate(random_gen), 0.2);
}

TEST(WorkloadTest, ThinkTimeInverseInMpki) {
  const CoreProfile slow{"slow", 20.0, 0.5, 0.2, 64};
  const CoreProfile fast{"fast", 80.0, 0.5, 0.2, 64};
  CoreGenerator slow_gen(0, slow, 32, 1024, 1);
  CoreGenerator fast_gen(0, fast, 32, 1024, 1);
  EXPECT_GT(slow_gen.ThinkTime(), fast_gen.ThinkTime());
  // MPKI 20 -> 50 instructions per miss -> 6.25 ns at 8 instr/ns.
  EXPECT_EQ(slow_gen.ThinkTime(), units::FromNs(6.25));
}

TEST(WorkloadTest, WriteFractionRespected) {
  const CoreProfile profile{"w", 30.0, 0.5, 0.35, 64};
  CoreGenerator gen(0, profile, 32, 1024, 5);
  int writes = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    writes += gen.Next().is_write ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(writes) / n, 0.35, 0.01);
}

}  // namespace
}  // namespace vrddram::memsim

namespace vrddram::memsim {
namespace {

TEST(WorkloadTest, MixesSpanMultipleArchetypes) {
  const auto mixes = MakeHighMemoryIntensityMixes();
  std::set<std::string> archetypes;
  for (const WorkloadMix& mix : mixes) {
    for (const CoreProfile& core : mix.cores) {
      archetypes.insert(core.name.substr(0, core.name.find('-')));
    }
  }
  // All four behavioural archetypes appear across the population.
  EXPECT_EQ(archetypes.size(), 4u);
}

TEST(WorkloadTest, HotBanksBoundBankSpread) {
  const CoreProfile profile{"p", 30.0, 0.0, 0.2, 64, 4};
  CoreGenerator gen(0, profile, 32, 1024, 11);
  std::set<std::uint32_t> banks;
  for (int i = 0; i < 5000; ++i) {
    banks.insert(gen.Next().bank);
  }
  EXPECT_LE(banks.size(), 4u);
}

}  // namespace
}  // namespace vrddram::memsim
