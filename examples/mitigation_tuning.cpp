/**
 * @file
 * Closing the loop from profiling to mitigation configuration: profile
 * a module's minimum RDT with a realistic (small) number of
 * measurements, configure Graphene / PRAC / PARA / MINT with several
 * guardbands, and quantify both the performance cost (four-core
 * memory-intensive mixes) and the residual risk (probability that the
 * configured threshold still sits above an RDT the row can exhibit).
 */
#include <algorithm>
#include <iostream>

#include "common/table.h"
#include "core/rdt_profiler.h"
#include "core/series_analysis.h"
#include "memsim/system.h"
#include "vrd/chip_catalog.h"

int main() {
  using namespace vrddram;

  // --- Step 1: profile like a deployment would (few measurements) ---
  std::unique_ptr<dram::Device> device = vrd::BuildDevice("M1");
  core::ProfilerConfig pc;
  core::RdtProfiler profiler(*device, pc);
  const auto victim = profiler.FindVictim(1, 4096);
  if (!victim) {
    std::cerr << "no victim row\n";
    return 1;
  }
  const std::vector<std::int64_t> quick =
      profiler.MeasureSeries(victim->row, victim->rdt_guess, 10);
  std::int64_t profiled_min = -1;
  for (const std::int64_t rdt : quick) {
    if (rdt >= 0 && (profiled_min < 0 || rdt < profiled_min)) {
      profiled_min = rdt;
    }
  }
  std::cout << "profiled min RDT over 10 measurements: " << profiled_min
            << "\n";

  // Ground truth the deployment never sees: 2,000 more measurements.
  const std::vector<std::int64_t> deep =
      profiler.MeasureSeries(victim->row, victim->rdt_guess, 2000);
  const core::SeriesAnalysis truth = core::AnalyzeSeries(deep);
  std::cout << "true minimum over 2,000 measurements:   "
            << truth.min_rdt << "\n\n";

  // --- Step 2: sweep guardbands and mitigations -----------------------
  const auto mixes = memsim::MakeHighMemoryIntensityMixes();
  memsim::SystemConfig base_config;
  base_config.requests_per_core = 8000;
  const memsim::SystemResult baseline =
      memsim::SimulateMix(mixes[0], base_config);

  TextTable table({"guardband", "configured RDT", "covers true min?",
                   "Graphene", "PRAC", "PARA", "MINT"});
  for (const double guardband : {0.0, 0.10, 0.25, 0.50}) {
    const auto configured = static_cast<std::uint64_t>(
        static_cast<double>(profiled_min) * (1.0 - guardband));
    std::vector<std::string> row = {
        Cell(guardband * 100.0, 0) + "%", Cell(configured),
        configured <= static_cast<std::uint64_t>(truth.min_rdt)
            ? "yes"
            : "NO (insecure)"};
    for (const memsim::MitigationKind kind :
         {memsim::MitigationKind::kGraphene,
          memsim::MitigationKind::kPrac, memsim::MitigationKind::kPara,
          memsim::MitigationKind::kMint}) {
      memsim::SystemConfig config = base_config;
      config.mitigation = kind;
      config.rdt = std::max<std::uint64_t>(configured, 16);
      const memsim::SystemResult result =
          memsim::SimulateMix(mixes[0], config);
      row.push_back(
          Cell(memsim::NormalizedPerformance(result, baseline), 3));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::cout << "\nThe tension of §6: a configured threshold above any"
            << " RDT the row ever exhibits is insecure, while large"
            << " guardbands cost real performance (PARA and MINT most"
            << " of all at low thresholds).\n";
  return 0;
}
