/**
 * @file
 * Attack lab: the RowHammer access patterns of the literature against
 * the on-die defenses the device model implements.
 *
 *   1. Single-, double-, and many-sided attacks on an unprotected
 *      module (refresh disabled, the paper's §3.1 methodology).
 *   2. The same double-sided attack against a module with its TRR
 *      engine armed by periodic refresh.
 *   3. A PRAC-capable DDR5 device that services ALERT_n back-offs.
 *
 * Everything runs through the public bender/dram APIs.
 */
#include <bit>
#include <iostream>

#include "bender/attack_patterns.h"
#include "bender/host.h"
#include "common/table.h"
#include "core/rdt_profiler.h"
#include "vrd/chip_catalog.h"

namespace {

using namespace vrddram;

/// Flips in the victim row after initializing it to Checkered0.
int RunAttack(dram::Device& device, dram::RowAddr victim,
              bender::AttackKind kind, std::uint64_t hammers,
              bool refresh_between, bool service_alerts) {
  bender::TestHost host(device);
  host.InitializeNeighborhood(0, victim,
                              dram::DataPattern::kCheckered0);
  const bender::AttackPlan plan =
      bender::PlanAttack(device, kind, victim, hammers);

  // Hammer in eight chunks so defenses get a chance to react.
  const std::uint64_t chunk =
      std::max<std::uint64_t>(1, plan.hammers_per_aggressor / 8);
  bender::AttackPlan chunk_plan = plan;
  chunk_plan.hammers_per_aggressor = chunk;
  for (int burst = 0; burst < 8; ++burst) {
    bender::ExecuteAttack(device, 0, chunk_plan,
                          device.timing().tRAS);
    if (refresh_between) {
      device.Refresh();
    }
    if (service_alerts && device.AlertPending()) {
      device.ServiceAlert();
    }
  }
  return static_cast<int>(
      host.ReadAndCompareVictim(0, victim,
                                dram::DataPattern::kCheckered0)
          .size());
}

}  // namespace

int main() {
  using namespace vrddram;

  // --- An undefended DDR4 module (refresh paused) ---------------------
  auto module = vrd::BuildDevice("M1");
  core::ProfilerConfig pc;
  core::RdtProfiler profiler(*module, pc);
  const auto victim = profiler.FindVictim(8, 4096);
  if (!victim) {
    std::cerr << "no victim row\n";
    return 1;
  }
  const std::uint64_t hc = victim->rdt_guess * 2;
  std::cout << "victim row " << victim->row << ", RDT guess "
            << victim->rdt_guess << ", attacking with " << hc
            << " activations per aggressor\n\n";

  TextTable table({"scenario", "pattern", "bitflips"});
  table.AddRow({"no defense (refresh off)", "single-sided",
                Cell(RunAttack(*module, victim->row,
                               bender::AttackKind::kSingleSided, hc,
                               false, false))});
  table.AddRow({"no defense (refresh off)", "double-sided",
                Cell(RunAttack(*vrd::BuildDevice("M1"), victim->row,
                               bender::AttackKind::kDoubleSided, hc,
                               false, false))});
  table.AddRow({"no defense (refresh off)", "many-sided (6)",
                Cell(RunAttack(*vrd::BuildDevice("M1"), victim->row,
                               bender::AttackKind::kManySided, hc,
                               false, false))});

  // --- The same module with TRR armed by periodic refresh -------------
  table.AddRow({"on-die TRR (refresh on)", "double-sided",
                Cell(RunAttack(*vrd::BuildDevice("M1"), victim->row,
                               bender::AttackKind::kDoubleSided, hc,
                               true, false))});

  // --- A PRAC-capable DDR5 device --------------------------------------
  auto ddr5 = vrd::BuildFutureDdr5Device();
  core::RdtProfiler ddr5_profiler(*ddr5, pc);
  const auto ddr5_victim = ddr5_profiler.FindVictim(8, 8192);
  if (ddr5_victim) {
    ddr5->SetPracThreshold(ddr5_victim->rdt_guess / 4);
    table.AddRow(
        {"DDR5 PRAC (alerts serviced)", "double-sided",
         Cell(RunAttack(*ddr5, ddr5_victim->row,
                        bender::AttackKind::kDoubleSided,
                        ddr5_victim->rdt_guess * 2, false, true))});
  }
  table.Print(std::cout);

  std::cout << "\nDouble-sided flips first (both neighbours couple);"
            << " TRR and a serviced PRAC threshold stop the same"
            << " attack. The paper's methodology disables refresh"
            << " precisely to take TRR out of the picture (§3.1).\n";
  return 0;
}
