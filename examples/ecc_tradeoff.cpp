/**
 * @file
 * The §6.4 pipeline as an application: run the guardband bitflip study
 * on a couple of modules, convert the worst observed unique-bitflip
 * count into a bit error rate, and evaluate what SEC, SECDED, and
 * Chipkill-like SSC ECC would make of it - including a fault-injection
 * cross-check against the real codecs.
 */
#include <array>
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "core/guardband.h"
#include "ecc/analysis.h"
#include "ecc/chipkill.h"
#include "ecc/hamming.h"

int main() {
  using namespace vrddram;

  // --- Step 1: how many cells still flip under a guardband? -----------
  core::GuardbandConfig config;
  config.devices = {"M1", "S2"};
  config.rows_per_device = 6;
  config.trials = 4000;
  config.scan_rows_per_region = 64;
  std::cout << "hammering below measured min RDTs with safety margins"
            << " (" << config.trials << " trials per margin)...\n";
  const auto outcomes = core::RunGuardbandStudy(config, &std::cout);

  TextTable flips({"margin", "rows with flips", "worst unique flips",
                   "worst BER"});
  for (const double margin : config.margins) {
    const auto hist = core::BitflipHistogramAtMargin(outcomes, margin);
    std::size_t rows_with_flips = 0;
    for (const auto& [count, rows] : hist) {
      if (count > 0) {
        rows_with_flips += rows;
      }
    }
    std::size_t worst = 0;
    if (!hist.empty()) {
      worst = hist.rbegin()->first;
    }
    flips.AddRow({Cell(margin * 100.0, 0) + "%",
                  Cell(static_cast<std::uint64_t>(rows_with_flips)),
                  Cell(static_cast<std::uint64_t>(worst)),
                  Cell(core::WorstBitErrorRate(outcomes, margin, 65536),
                       8)});
  }
  std::cout << '\n';
  flips.Print(std::cout);

  // --- Step 2: what would ECC make of the worst rate? -----------------
  const double ber = std::max(
      core::WorstBitErrorRate(outcomes, 0.10, 65536), 1e-6);
  std::cout << "\nanalytic per-codeword outcome at BER " << ber << ":\n";
  TextTable table({"code", "uncorrectable", "undetectable"});
  for (const ecc::CodeKind kind :
       {ecc::CodeKind::kSec, ecc::CodeKind::kSecded,
        ecc::CodeKind::kChipkill}) {
    const ecc::ErrorProbabilities p = ecc::AnalyzeCode(kind, ber);
    table.AddRow({ToString(kind), Cell(p.uncorrectable, 10),
                  Cell(p.undetectable, 10)});
  }
  table.Print(std::cout);

  // --- Step 3: fault-inject the real codecs at that rate --------------
  const ecc::Hamming72 hamming;
  Rng rng(99);
  const std::uint64_t data = 0xA5A5'5A5A'0FF0'F00Full;
  const ecc::Codeword72 clean = hamming.Encode(data);
  const int trials = 500000;
  int uncorrected = 0;
  for (int t = 0; t < trials; ++t) {
    ecc::Codeword72 word = clean;
    for (std::size_t bit = 0; bit < 72; ++bit) {
      if (rng.NextBernoulli(ber)) {
        word.FlipBit(bit);
      }
    }
    const ecc::DecodeResult result = hamming.Decode(word);
    if (result.status == ecc::DecodeStatus::kDetected ||
        result.data != data) {
      ++uncorrected;
    }
  }
  std::cout << "\nSECDED fault injection: "
            << static_cast<double>(uncorrected) / trials
            << " uncorrectable rate over " << trials << " codewords\n";
  std::cout << "\nConclusion (§6.4): a >10% guardband plus SECDED or"
            << " Chipkill ECC could mask VRD-induced flips, at the"
            << " performance cost shown in mitigation_tuning.\n";
  return 0;
}
