/**
 * @file
 * Quickstart: measure the read disturbance threshold (RDT) of one DRAM
 * row many times and watch it change - the variable read disturbance
 * (VRD) phenomenon in a dozen lines of API.
 *
 *   1. Instantiate a device under test from the catalog (a simulated
 *      individual of the paper's Table 1 population).
 *   2. Run Algorithm 1's find_victim to locate a disturbance-prone row.
 *   3. Measure its RDT 1,000 times and analyze the series.
 */
#include <iostream>

#include "core/rdt_profiler.h"
#include "core/series_analysis.h"
#include "vrd/chip_catalog.h"

int main() {
  using namespace vrddram;

  // A 16 Gb DDR4 module from Mfr. H (Table 1's H1), with its trap-based
  // read-disturbance fault engine attached.
  std::unique_ptr<dram::Device> device = vrd::BuildDevice("H1");
  std::cout << "device " << device->name() << ": "
            << device->org().Describe() << "\n\n";

  // Algorithm 1: find a victim row whose guessed RDT is below 40,000
  // (ten quick measurements per candidate row).
  core::ProfilerConfig config;
  config.pattern = dram::DataPattern::kCheckered0;
  core::RdtProfiler profiler(*device, config);
  const auto victim = profiler.FindVictim(/*begin=*/1, /*end=*/4096);
  if (!victim) {
    std::cerr << "no disturbance-prone row found\n";
    return 1;
  }
  std::cout << "victim row " << victim->row << ", guessed RDT "
            << victim->rdt_guess << "\n";

  // test_loop: 1,000 repeated RDT measurements (each sweeps hammer
  // counts from RDT_guess/2 to 3x RDT_guess in 1% steps and records
  // the first count that flips a bit).
  const std::vector<std::int64_t> series =
      profiler.MeasureSeries(victim->row, victim->rdt_guess, 1000);
  const core::SeriesAnalysis a = core::AnalyzeSeries(series);

  std::cout << "\nVRD in action:\n"
            << "  measurements        " << a.measurements << "\n"
            << "  min / max RDT       " << a.min_rdt << " / " << a.max_rdt
            << "  (max/min " << a.max_over_min << ")\n"
            << "  distinct RDT values " << a.unique_values << "\n"
            << "  coefficient of variation " << a.cv << "\n"
            << "  minimum first seen at measurement #"
            << a.first_min_index << "\n"
            << "  consecutive measurements usually differ: "
            << 100.0 * a.immediate_change_fraction << "% immediate"
            << " changes\n";

  std::cout << "\nTakeaway 1: the RDT changes randomly and"
            << " unpredictably -- a handful of measurements cannot"
            << " safely configure a RowHammer defense.\n";
  return 0;
}
