/**
 * @file
 * A small end-to-end characterization campaign in the style of the
 * paper's §5: pick several modules from the catalog, let the simulated
 * heater-pad + PID rig settle each test temperature, collect
 * measurement series per (row, data pattern, tAggOn), and derive a
 * per-module VRD profile with a guardband recommendation.
 *
 * This exercises the public API the benches are built from:
 * core::RunCampaign + core::AnalyzeSeries + core::AnalyzeRowSeries.
 */
#include <algorithm>
#include <iostream>
#include <map>

#include "common/table.h"
#include "core/campaign.h"
#include "core/min_rdt_mc.h"
#include "core/series_analysis.h"

int main() {
  using namespace vrddram;

  core::CampaignConfig config;
  config.devices = {"H3", "M1", "S2"};
  config.rows_per_device = 6;
  config.measurements = 500;
  config.patterns = {dram::DataPattern::kCheckered0,
                     dram::DataPattern::kRowstripe1};
  config.t_ons = {core::TOnChoice::kMinTras, core::TOnChoice::kTrefi};
  config.temperatures = {50.0, 80.0};
  config.use_thermal_rig = true;  // settle through the PID controller
  config.scan_rows_per_region = 64;
  config.threads = 0;  // fan (device, temp) shards across all cores;
                       // results are bit-identical to threads = 1

  std::cout << "running campaign: " << config.devices.size()
            << " modules, " << config.rows_per_device << " rows each, "
            << config.measurements << " measurements per series...\n";
  const core::CampaignResult result =
      core::RunCampaign(config, &std::cout);

  // Aggregate per module.
  struct ModuleSummary {
    std::size_t series = 0;
    double worst_cv = 0.0;
    double worst_ratio = 1.0;
    std::int64_t min_rdt = -1;
    double worst_norm_min_n10 = 1.0;
  };
  std::map<std::string, ModuleSummary> modules;
  core::MinRdtSettings settings;
  settings.sample_sizes = {10};
  settings.iterations = 2000;
  Rng rng(7);

  for (const core::SeriesRecord& record : result.records) {
    const core::SeriesAnalysis a =
        core::AnalyzeSeries(record.series, /*acf_max_lag=*/1);
    ModuleSummary& summary = modules[record.device];
    ++summary.series;
    summary.worst_cv = std::max(summary.worst_cv, a.cv);
    summary.worst_ratio = std::max(summary.worst_ratio, a.max_over_min);
    if (summary.min_rdt < 0 || a.min_rdt < summary.min_rdt) {
      summary.min_rdt = a.min_rdt;
    }
    const core::RowMinRdtResult mc =
        core::AnalyzeRowSeries(record.series, settings, rng);
    summary.worst_norm_min_n10 = std::max(
        summary.worst_norm_min_n10, mc.per_n[0].expected_norm_min);
  }

  TextTable table({"module", "series", "worst CV", "worst max/min",
                   "min observed RDT", "E[min|N=10]/min (worst)",
                   "recommended config"});
  for (const auto& [name, summary] : modules) {
    // A profiling flow that takes N = 10 measurements per row should
    // guard-band by at least the worst overestimation it would make,
    // plus headroom for states it has never seen (Takeaways 1-2).
    const double overestimate = summary.worst_norm_min_n10 - 1.0;
    const double guardband = std::max(0.10, 2.0 * overestimate);
    const auto configured = static_cast<std::int64_t>(
        static_cast<double>(summary.min_rdt) * (1.0 - guardband));
    table.AddRow({name, Cell(static_cast<std::uint64_t>(summary.series)),
                  Cell(summary.worst_cv, 4),
                  Cell(summary.worst_ratio, 2), Cell(summary.min_rdt),
                  Cell(summary.worst_norm_min_n10, 3),
                  "RDT <= " + Cell(configured) + " (" +
                      Cell(guardband * 100.0, 0) + "% guardband + ECC)"});
  }
  std::cout << '\n';
  table.Print(std::cout);

  std::cout << "\nNote (§6.4): even a 50% guardband does not guarantee"
            << " the true minimum is covered; pair the guardband with"
            << " SECDED or Chipkill ECC.\n";
  return 0;
}
